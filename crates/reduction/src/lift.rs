//! The width-lifting constructions closing Section 3: NP-hardness for every
//! `k + ℓ`.
//!
//! * Integer `ℓ`: add a clique of `2ℓ` fresh vertices, each also connected
//!   to every old vertex — widths shift up by exactly `ℓ`.
//! * Rational `ℓ = r/q`: add `r` fresh vertices with the cyclic hyperedges
//!   `{v_i, ..., v_{i⊕(q−1)}}`, again fully connected to the old vertices.

use hypergraph::Hypergraph;

/// Integer lift: `H ↦ H + K_{2ℓ}` fully connected to `V(H)`.
pub fn lift_integer(h: &Hypergraph, ell: usize) -> Hypergraph {
    assert!(ell >= 1);
    let n = h.num_vertices();
    let fresh = 2 * ell;
    let mut names: Vec<String> = (0..n).map(|v| h.vertex_name(v).to_string()).collect();
    names.extend((0..fresh).map(|i| format!("lift{i}")));
    let mut edge_names: Vec<String> = (0..h.num_edges())
        .map(|e| h.edge_name(e).to_string())
        .collect();
    let mut edges: Vec<Vec<usize>> = h.edges().iter().map(|e| e.to_vec()).collect();
    for i in 0..fresh {
        for j in (i + 1)..fresh {
            edge_names.push(format!("k{i}_{j}"));
            edges.push(vec![n + i, n + j]);
        }
        for w in 0..n {
            edge_names.push(format!("conn{i}_{w}"));
            edges.push(vec![n + i, w]);
        }
    }
    Hypergraph::from_parts(names, edge_names, edges)
}

/// Rational lift by `r/q` (with `r > q > 0`): `r` fresh vertices, cyclic
/// `q`-ary hyperedges, full connection to old vertices.
pub fn lift_rational(h: &Hypergraph, r: usize, q: usize) -> Hypergraph {
    assert!(r > q && q > 0, "need r > q > 0");
    let n = h.num_vertices();
    let mut names: Vec<String> = (0..n).map(|v| h.vertex_name(v).to_string()).collect();
    names.extend((0..r).map(|i| format!("lift{i}")));
    let mut edge_names: Vec<String> = (0..h.num_edges())
        .map(|e| h.edge_name(e).to_string())
        .collect();
    let mut edges: Vec<Vec<usize>> = h.edges().iter().map(|e| e.to_vec()).collect();
    for i in 0..r {
        edge_names.push(format!("cyc{i}"));
        edges.push((0..q).map(|t| n + (i + t) % r).collect());
        for w in 0..n {
            edge_names.push(format!("conn{i}_{w}"));
            edges.push(vec![n + i, w]);
        }
    }
    Hypergraph::from_parts(names, edge_names, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    #[test]
    fn integer_lift_shape() {
        let h = generators::cycle(4);
        let l = lift_integer(&h, 1);
        assert_eq!(l.num_vertices(), 6);
        // 4 old + C(2,2)=1 clique edge + 2*4 connections.
        assert_eq!(l.num_edges(), 4 + 1 + 8);
        // The fresh pair is adjacent to everything.
        let adj = l.primal_graph();
        assert_eq!(adj[4].len(), 5);
        assert_eq!(adj[5].len(), 5);
    }

    #[test]
    fn rational_lift_shape() {
        let h = generators::path(3);
        let l = lift_rational(&h, 3, 2);
        assert_eq!(l.num_vertices(), 6);
        // 2 old edges + 3 cyclic + 3*3 connections.
        assert_eq!(l.num_edges(), 2 + 3 + 9);
        // Cyclic edges have arity 2 and wrap around.
        let cyc2 = l.edge(l.edge_by_name("cyc2").unwrap());
        assert_eq!(cyc2.to_vec(), vec![3, 5]);
    }
}
