//! 3SAT formulas and a DPLL solver — the substrate for the Section 3
//! reduction (the paper reduces *from* 3SAT, so exercising both directions
//! of Theorem 3.2 needs a SAT solver to find the satisfying assignments
//! that drive the Table 1 witness construction).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A literal: variable index (0-based) plus polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Literal {
    /// Variable index in `0..num_vars`.
    pub var: usize,
    /// True for `x`, false for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// Positive literal `x_var`.
    pub fn pos(var: usize) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// Negative literal `¬x_var`.
    pub fn neg(var: usize) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// Evaluates under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var + 1)
        } else {
            write!(f, "¬x{}", self.var + 1)
        }
    }
}

/// A 3-literal clause.
pub type Clause = [Literal; 3];

/// A 3CNF formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables `n`.
    pub num_vars: usize,
    /// The clauses (each exactly three literals).
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Builds a formula, validating variable indices.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Self {
        for c in &clauses {
            for l in c {
                assert!(l.var < num_vars, "literal references unknown variable");
            }
        }
        Cnf { num_vars, clauses }
    }

    /// Number of clauses `m`.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Evaluates a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// DPLL with unit propagation and pure-literal elimination; returns a
    /// satisfying assignment or `None`.
    pub fn solve(&self) -> Option<Vec<bool>> {
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        if self.dpll(&mut assignment) {
            Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
        } else {
            None
        }
    }

    fn dpll(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation to fixpoint.
        let mut trail: Vec<usize> = Vec::new();
        loop {
            let mut unit: Option<Literal> = None;
            let mut conflict = false;
            for clause in &self.clauses {
                let mut unassigned = Vec::new();
                let mut satisfied = false;
                for l in clause {
                    match assignment[l.var] {
                        Some(v) if v == l.positive => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => unassigned.push(*l),
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned.len() {
                    0 => {
                        conflict = true;
                        break;
                    }
                    1 => {
                        unit = Some(unassigned[0]);
                        break;
                    }
                    _ => {}
                }
            }
            if conflict {
                for v in trail {
                    assignment[v] = None;
                }
                return false;
            }
            match unit {
                Some(l) => {
                    assignment[l.var] = Some(l.positive);
                    trail.push(l.var);
                }
                None => break,
            }
        }
        // Find a branching variable.
        let Some(var) = (0..self.num_vars).find(|&v| assignment[v].is_none()) else {
            let ok = self
                .clauses
                .iter()
                .all(|c| c.iter().any(|l| assignment[l.var] == Some(l.positive)));
            if !ok {
                for v in trail {
                    assignment[v] = None;
                }
            }
            return ok;
        };
        for value in [true, false] {
            assignment[var] = Some(value);
            if self.dpll(assignment) {
                return true;
            }
            assignment[var] = None;
        }
        for v in trail {
            assignment[v] = None;
        }
        false
    }

    /// The running example of Example 3.3:
    /// `(x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ ¬x3)`.
    pub fn example_3_3() -> Cnf {
        Cnf::new(
            3,
            vec![
                [Literal::pos(0), Literal::neg(1), Literal::pos(2)],
                [Literal::neg(0), Literal::pos(1), Literal::neg(2)],
            ],
        )
    }

    /// The smallest canonical UNSAT 3CNF: all eight sign patterns over
    /// three variables.
    pub fn all_sign_patterns() -> Cnf {
        let mut clauses = Vec::new();
        for mask in 0..8u8 {
            clauses.push([
                Literal {
                    var: 0,
                    positive: mask & 1 == 0,
                },
                Literal {
                    var: 1,
                    positive: mask & 2 == 0,
                },
                Literal {
                    var: 2,
                    positive: mask & 4 == 0,
                },
            ]);
        }
        Cnf::new(3, clauses)
    }

    /// A random 3CNF with a *planted* satisfying assignment (deterministic
    /// in `seed`): every clause is made true under the plant.
    pub fn random_planted(num_vars: usize, num_clauses: usize, seed: u64) -> (Cnf, Vec<bool>) {
        assert!(num_vars >= 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let plant: Vec<bool> = (0..num_vars).map(|_| rng.gen_bool(0.5)).collect();
        let mut clauses = Vec::new();
        while clauses.len() < num_clauses {
            let mut vars = [0usize; 3];
            vars[0] = rng.gen_range(0..num_vars);
            loop {
                vars[1] = rng.gen_range(0..num_vars);
                if vars[1] != vars[0] {
                    break;
                }
            }
            loop {
                vars[2] = rng.gen_range(0..num_vars);
                if vars[2] != vars[0] && vars[2] != vars[1] {
                    break;
                }
            }
            let mut clause = [
                Literal {
                    var: vars[0],
                    positive: rng.gen_bool(0.5),
                },
                Literal {
                    var: vars[1],
                    positive: rng.gen_bool(0.5),
                },
                Literal {
                    var: vars[2],
                    positive: rng.gen_bool(0.5),
                },
            ];
            // Force satisfaction under the plant.
            if !clause.iter().any(|l| l.eval(&plant)) {
                let fix = rng.gen_range(0..3);
                clause[fix].positive = plant[clause[fix].var];
            }
            clauses.push(clause);
        }
        (Cnf::new(num_vars, clauses), plant)
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "({} ∨ {} ∨ {})", c[0], c[1], c[2])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_3_is_satisfiable() {
        let cnf = Cnf::example_3_3();
        let a = cnf.solve().expect("Example 3.3 is satisfiable");
        assert!(cnf.eval(&a));
        // The paper's example assignment also works.
        assert!(cnf.eval(&[true, false, false]));
    }

    #[test]
    fn all_sign_patterns_is_unsat() {
        let cnf = Cnf::all_sign_patterns();
        assert!(cnf.solve().is_none());
        // Brute-force confirmation.
        for mask in 0..8u8 {
            let a = vec![mask & 1 != 0, mask & 2 != 0, mask & 4 != 0];
            assert!(!cnf.eval(&a));
        }
    }

    #[test]
    fn planted_instances_are_satisfiable() {
        for seed in 0..10u64 {
            let (cnf, plant) = Cnf::random_planted(6, 12, seed);
            assert!(cnf.eval(&plant), "seed {seed}");
            let solved = cnf.solve().expect("planted instance must be SAT");
            assert!(cnf.eval(&solved), "seed {seed}");
        }
    }

    #[test]
    fn dpll_agrees_with_brute_force_on_small_formulas() {
        for seed in 0..20u64 {
            let (cnf, _) = Cnf::random_planted(4, 6, seed);
            // Flip some polarities to get possibly-UNSAT variants.
            let mut tweaked = cnf.clone();
            if seed % 3 == 0 {
                for c in tweaked.clauses.iter_mut() {
                    c[0].positive = !c[0].positive;
                }
            }
            let brute = (0..(1u32 << tweaked.num_vars)).any(|mask| {
                let a: Vec<bool> = (0..tweaked.num_vars).map(|v| mask >> v & 1 == 1).collect();
                tweaked.eval(&a)
            });
            assert_eq!(tweaked.solve().is_some(), brute, "seed {seed}");
        }
    }

    #[test]
    fn display_is_readable() {
        let s = Cnf::example_3_3().to_string();
        assert!(s.contains("x1") && s.contains("¬x2"));
    }
}
