//! The Section 3 NP-hardness machinery of Theorem 3.2: 3SAT formulas and a
//! DPLL solver, the Lemma 3.1 gadget, the full 3SAT → hypergraph reduction,
//! the Table 1 / Figure 2 witness GHD for satisfiable formulas, exact LP
//! certification of Lemmas 3.5/3.6 and Claim D, and the `k + ℓ` width
//! lifts closing the section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod construction;
pub mod lemmas;
pub mod lift;
pub mod witness;

pub use cnf::{Clause, Cnf, Literal};
pub use construction::{build, gadget, QPos, Reduction};
pub use lemmas::{
    claim_d_min_weight, complementary_classes, complementary_pairs, lemma_3_5_max_imbalance,
    lemma_3_6_certificates,
};
pub use lift::{lift_integer, lift_rational};
pub use witness::{witness_from_solver, witness_ghd};
