//! The "if"-direction witness of Theorem 3.2 (Table 1 / Figure 2): given a
//! satisfying assignment `σ` of `φ`, an explicit GHD of width 2 of the
//! reduction hypergraph.

use crate::construction::Reduction;
use decomp::{Decomposition, Node};
use hypergraph::VertexSet;

/// Builds the Table 1 GHD for a satisfying assignment.
///
/// Panics if `assignment` does not satisfy the formula (callers should
/// check first — the witness only exists for "yes" instances).
pub fn witness_ghd(r: &Reduction, assignment: &[bool]) -> Decomposition {
    assert!(
        r.cnf.eval(assignment),
        "witness construction requires a satisfying assignment"
    );
    let z_set = r.z_set(assignment);
    let s_all = r.s_set();
    let y_all: VertexSet = r.y.iter().copied().collect();
    let yp_all: VertexSet = r.y_prime.iter().copied().collect();
    let a_all: VertexSet = r.a.values().copied().collect();
    let ap_all: VertexSet = r.a_prime.values().copied().collect();
    let core = |name: &str| r.core[name];
    let h = &r.hypergraph;
    let edge = |name: &str| {
        h.edge_by_name(name)
            .unwrap_or_else(|| panic!("edge {name}"))
    };

    // For each clause j: the first literal index k (1-based) satisfied by σ.
    let kp: Vec<u8> = r
        .cnf
        .clauses
        .iter()
        .map(|c| {
            (0..3)
                .find(|&k| c[k].eval(assignment))
                .expect("satisfying assignment satisfies every clause") as u8
                + 1
        })
        .collect();

    let base: VertexSet = [r.z[0], r.z[1]].into_iter().collect();

    // u_C (root of our rooted rendering of the Figure 2 path).
    let bag_uc: VertexSet = {
        let mut b = base.union(&s_all);
        b.union_with(&y_all);
        for v in ["d1", "d2", "c1", "c2"] {
            b.insert(core(v));
        }
        b
    };
    let mut d = Decomposition::new(Node::integral(bag_uc, [edge("gc1d1M1"), edge("gc2d2M2")]));

    // u_B, u_A.
    let mut bag = base.union(&s_all);
    bag.union_with(&y_all);
    for v in ["c1", "c2", "b1", "b2"] {
        bag.insert(core(v));
    }
    let ub = d.add_child(0, Node::integral(bag, [edge("gb1c1M1"), edge("gb2c2M2")]));
    let mut bag = base.union(&s_all);
    bag.union_with(&y_all);
    for v in ["b1", "b2", "a1", "a2"] {
        bag.insert(core(v));
    }
    let ua = d.add_child(ub, Node::integral(bag, [edge("ga1b1M1"), edge("ga2b2M2")]));

    // u_{min ⊖ 1}.
    let mut bag = base.union(&s_all);
    bag.union_with(&y_all);
    bag.union_with(&a_all);
    bag.union_with(&z_set);
    bag.insert(core("a1"));
    let mut prev = d.add_child(ua, Node::integral(bag, [r.e_00[0], r.e_00[1]]));

    // The long path u_p for p ∈ [2n+3; m]⁻.
    for p in r.positions_minus() {
        let mut bag = base.union(&s_all);
        bag.union_with(&r.a_prime_prefix(p));
        bag.union_with(&r.a_suffix(p));
        bag.union_with(&z_set);
        let k = kp[p.1 - 1];
        let node = Node::integral(bag, [r.e_lit[&(p, k, 0)], r.e_lit[&(p, k, 1)]]);
        prev = d.add_child(prev, node);
    }

    // u_max.
    let mut bag = base.union(&s_all);
    bag.union_with(&yp_all);
    bag.union_with(&ap_all);
    bag.union_with(&z_set);
    bag.insert(core("a1'"));
    let umax = d.add_child(prev, Node::integral(bag, [r.e_max[0], r.e_max[1]]));

    // u'_A, u'_B, u'_C.
    let mut bag = base.union(&s_all);
    bag.union_with(&yp_all);
    for v in ["a1'", "a2'", "b1'", "b2'"] {
        bag.insert(core(v));
    }
    let upa = d.add_child(
        umax,
        Node::integral(bag, [edge("g'a1b1M1"), edge("g'a2b2M2")]),
    );
    let mut bag = base.union(&s_all);
    bag.union_with(&yp_all);
    for v in ["b1'", "b2'", "c1'", "c2'"] {
        bag.insert(core(v));
    }
    let upb = d.add_child(
        upa,
        Node::integral(bag, [edge("g'b1c1M1"), edge("g'b2c2M2")]),
    );
    let mut bag = base.union(&s_all);
    bag.union_with(&yp_all);
    for v in ["c1'", "c2'", "d1'", "d2'"] {
        bag.insert(core(v));
    }
    d.add_child(
        upb,
        Node::integral(bag, [edge("g'c1d1M1"), edge("g'c2d2M2")]),
    );

    d
}

/// End-to-end "if"-direction: solve `φ`; on success return the validated
/// width-2 GHD.
pub fn witness_from_solver(r: &Reduction) -> Option<Decomposition> {
    let assignment = r.cnf.solve()?;
    Some(witness_ghd(r, &assignment))
}

/// A sanity helper for tests and experiments: the bag of the `u_B` node
/// must equal `{b1, b2, c1, c2} ∪ M` per Lemma 3.1 — with
/// `M = M1 ∪ M2 = S ∪ Y ∪ {z1, z2}`.
pub fn lemma_3_1_ub_bag(r: &Reduction) -> VertexSet {
    let mut b = r.s_set();
    b.extend(r.y.iter().copied());
    b.insert(r.z[0]);
    b.insert(r.z[1]);
    for v in ["b1", "b2", "c1", "c2"] {
        b.insert(r.core[v]);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;
    use crate::construction::build;
    use arith::Rational;
    use decomp::validate;

    #[test]
    fn example_3_3_witness_is_a_valid_width_2_ghd_and_fhd() {
        let r = build(&Cnf::example_3_3());
        // The paper's assignment: σ(x1) = true, σ(x2) = σ(x3) = false.
        let d = witness_ghd(&r, &[true, false, false]);
        assert_eq!(d.width(), Rational::from(2usize));
        assert_eq!(validate::validate_ghd(&r.hypergraph, &d), Ok(()));
        assert_eq!(validate::validate_fhd(&r.hypergraph, &d), Ok(()));
    }

    #[test]
    fn all_true_assignment_also_works() {
        // Example 3.3's closing remark: σ(x1) = σ(x2) = σ(x3) = true is
        // also satisfying and yields a different witness.
        let r = build(&Cnf::example_3_3());
        let d = witness_ghd(&r, &[true, true, true]);
        assert_eq!(validate::validate_ghd(&r.hypergraph, &d), Ok(()));
    }

    #[test]
    fn witness_has_the_figure_2_shape() {
        let r = build(&Cnf::example_3_3());
        let d = witness_ghd(&r, &[true, false, false]);
        // A path: 3 gadget nodes + 1 + (|pos|-1) + 1 + 3 gadget nodes.
        assert_eq!(d.len(), 3 + 1 + (18 - 1) + 1 + 3);
        // Every non-leaf has exactly one child (it is a path).
        for u in 0..d.len() {
            assert!(d.children(u).len() <= 1);
        }
    }

    #[test]
    fn solver_driven_witnesses_on_random_planted_instances() {
        for seed in 0..3u64 {
            let (cnf, _) = Cnf::random_planted(3, 3, seed);
            let r = build(&cnf);
            let d = witness_from_solver(&r).expect("planted instances are satisfiable");
            assert_eq!(
                validate::validate_ghd(&r.hypergraph, &d),
                Ok(()),
                "seed {seed}"
            );
            assert_eq!(d.width(), Rational::from(2usize), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "satisfying")]
    fn unsatisfying_assignment_rejected() {
        let r = build(&Cnf::example_3_3());
        // x1 = x2 = x3 with both clauses violated? (F, T, F) falsifies
        // clause 1: (F ∨ ¬T ∨ F).
        witness_ghd(&r, &[false, true, false]);
    }

    #[test]
    fn ub_bag_matches_lemma_3_1() {
        let r = build(&Cnf::example_3_3());
        let d = witness_ghd(&r, &[true, false, false]);
        assert_eq!(d.node(1).bag, lemma_3_1_ub_bag(&r));
    }
}
