//! LP verification of the structural lemmas behind the "only if" direction
//! of Theorem 3.2: complementary edges (Definition 3.4), the equal-weight
//! lemma (Lemma 3.5), the forced-cover lemma (Lemma 3.6), and the
//! infeasibility facts used by Claims D–H.
//!
//! These checks run on the *actual* reduction hypergraph and certify the
//! paper's arguments exactly (rational arithmetic, no tolerance).

use crate::construction::Reduction;
use arith::Rational;
use hypergraph::VertexSet;
use lp::{Cmp, LinearProgram, LpResult};

/// Complementary edge *classes* per Definition 3.4, grouped by `S`-trace:
/// each entry is `(lo, hi)` where every edge in `lo` satisfies
/// `e ∩ S = S'` and every edge in `hi` satisfies `e ∩ S = S \ S'`.
///
/// For the literal edges both classes are singletons — there the paper's
/// per-pair statement `γ(e) = γ(e')` applies verbatim; the gadget's
/// `M1`/`M2` edges share one trace across the A/B/C levels, so equal weight
/// is forced for the class *totals*.
pub fn complementary_classes(r: &Reduction) -> Vec<(Vec<usize>, Vec<usize>)> {
    let s_all = r.s_set();
    let h = &r.hypergraph;
    let mut by_trace: std::collections::HashMap<VertexSet, Vec<usize>> =
        std::collections::HashMap::new();
    for e in 0..h.num_edges() {
        let trace = h.edge(e).intersection(&s_all);
        if !trace.is_empty() && trace != s_all {
            by_trace.entry(trace).or_default().push(e);
        }
    }
    let mut out = Vec::new();
    let mut traces: Vec<&VertexSet> = by_trace.keys().collect();
    traces.sort();
    for trace in traces {
        let complement = s_all.difference(trace);
        if trace < &complement {
            if let Some(partner) = by_trace.get(&complement) {
                out.push((by_trace[trace].clone(), partner.clone()));
            }
        }
    }
    out
}

/// The per-pair complementary edges where both trace classes are singletons
/// (e.g. every `(e^{k,0}_p, e^{k,1}_p)` pair).
pub fn complementary_pairs(r: &Reduction) -> Vec<(usize, usize)> {
    complementary_classes(r)
        .into_iter()
        .filter(|(lo, hi)| lo.len() == 1 && hi.len() == 1)
        .map(|(lo, hi)| (lo[0].min(hi[0]), lo[0].max(hi[0])))
        .collect()
}

/// The minimum fractional edge cover weight of a vertex set within the
/// reduction hypergraph (an LP).
pub fn min_cover_weight(r: &Reduction, target: &VertexSet) -> Option<Rational> {
    cover::fractional_cover(&r.hypergraph, target).map(|c| c.weight)
}

/// Lemma 3.5 (as an LP certificate): over all fractional covers `γ` of
/// `S ∪ {z1, z2}` with `weight(γ) <= 2`, the maximum of
/// `Σ_{e ∈ lo} γ(e) − Σ_{e' ∈ hi} γ(e')` for a complementary class pair.
/// The lemma asserts this maximum is exactly 0 (equal weights are forced).
pub fn lemma_3_5_max_imbalance(
    r: &Reduction,
    class: &(Vec<usize>, Vec<usize>),
) -> Option<Rational> {
    let mut target = r.s_set();
    target.insert(r.z[0]);
    target.insert(r.z[1]);
    let mut objective: Vec<(usize, Rational)> =
        class.0.iter().map(|&e| (e, Rational::one())).collect();
    objective.extend(class.1.iter().map(|&e| (e, -Rational::one())));
    max_objective_over_covers(r, &target, &objective)
}

/// Lemma 3.6 (as LP certificates) for a position `p`: over all fractional
/// covers of `S ∪ A̅'_p... ∪ {z1,z2}` — precisely
/// `S ∪ A'_p ∪ A̅_p ∪ {z1, z2}` — of weight `<= 2`:
///
/// * the maximum total weight placed on edges *other than*
///   `e^{k,0}_p, e^{k,1}_p` is 0, and
/// * `Σ_k γ(e^{k,0}_p)` is forced to 1 (min = max = 1).
///
/// Returns `(max_other_weight, min_sum0, max_sum0)`.
pub fn lemma_3_6_certificates(
    r: &Reduction,
    p: (usize, usize),
) -> Option<(Rational, Rational, Rational)> {
    let mut target = r.s_set();
    target.union_with(&r.a_prime_prefix(p));
    target.union_with(&r.a_suffix(p));
    target.insert(r.z[0]);
    target.insert(r.z[1]);
    let allowed: Vec<usize> = (1..=3u8)
        .flat_map(|k| [r.e_lit[&(p, k, 0)], r.e_lit[&(p, k, 1)]])
        .collect();
    let other_objective: Vec<(usize, Rational)> = (0..r.hypergraph.num_edges())
        .filter(|e| !allowed.contains(e))
        .map(|e| (e, Rational::one()))
        .collect();
    let max_other = max_objective_over_covers(r, &target, &other_objective)?;
    let sum0: Vec<(usize, Rational)> = (1..=3u8)
        .map(|k| (r.e_lit[&(p, k, 0)], Rational::one()))
        .collect();
    let max_sum0 = max_objective_over_covers(r, &target, &sum0)?;
    let min_sum0 = min_objective_over_covers(r, &target, &sum0)?;
    Some((max_other, min_sum0, max_sum0))
}

/// Claim D/E/F's impossibility: `S ∪ {z1, z2, a1, a'1}` cannot be covered
/// with weight `<= 2`. Returns the true minimum cover weight (the claim is
/// that it exceeds 2).
pub fn claim_d_min_weight(r: &Reduction) -> Option<Rational> {
    let mut target = r.s_set();
    target.insert(r.z[0]);
    target.insert(r.z[1]);
    target.insert(r.core["a1"]);
    target.insert(r.core["a1'"]);
    min_cover_weight(r, &target)
}

/// Optimizes `objective` over the polytope
/// `{γ >= 0 : γ covers target, weight(γ) <= 2, γ <= 1}`.
fn max_objective_over_covers(
    r: &Reduction,
    target: &VertexSet,
    objective: &[(usize, Rational)],
) -> Option<Rational> {
    objective_over_covers(r, target, objective, true)
}

fn min_objective_over_covers(
    r: &Reduction,
    target: &VertexSet,
    objective: &[(usize, Rational)],
) -> Option<Rational> {
    objective_over_covers(r, target, objective, false)
}

fn objective_over_covers(
    r: &Reduction,
    target: &VertexSet,
    objective: &[(usize, Rational)],
    maximize: bool,
) -> Option<Rational> {
    let h = &r.hypergraph;
    let m = h.num_edges();
    let mut prog = if maximize {
        LinearProgram::maximize(m)
    } else {
        LinearProgram::minimize(m)
    };
    for (e, c) in objective {
        prog.set_objective(*e, c.clone());
    }
    for v in target.iter() {
        let coeffs: Vec<(usize, Rational)> = h
            .incident_edges(v)
            .iter()
            .map(|&e| (e, Rational::one()))
            .collect();
        if coeffs.is_empty() {
            return None;
        }
        prog.add_constraint(coeffs, Cmp::Ge, Rational::one());
    }
    prog.add_constraint(
        (0..m).map(|e| (e, Rational::one())).collect(),
        Cmp::Le,
        Rational::from(2usize),
    );
    match prog.solve() {
        LpResult::Optimal { value, .. } => Some(value),
        LpResult::Infeasible => None,
        LpResult::Unbounded => unreachable!("bounded by the weight constraint"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;
    use crate::construction::build;
    use arith::rat;

    fn small() -> Reduction {
        // n = 1? The reduction needs 3 distinct vars per clause; use the
        // Example 3.3 instance but note its S is size 63 — LPs stay small
        // because constraints are per-vertex of the target only. For test
        // speed use a 2-clause, 3-variable instance (the running example).
        build(&Cnf::example_3_3())
    }

    #[test]
    fn complementary_pairs_exist_and_partition_s() {
        let r = small();
        let classes = complementary_classes(&r);
        assert!(!classes.is_empty());
        let s_all = r.s_set();
        for (lo, hi) in &classes {
            let t1 = r.hypergraph.edge(lo[0]).intersection(&s_all);
            let t2 = r.hypergraph.edge(hi[0]).intersection(&s_all);
            assert!(t1.is_disjoint(&t2));
            assert_eq!(t1.union(&t2), s_all);
        }
        // The designated singleton pairs appear: (e^{k,0}_p, e^{k,1}_p)
        // and the (0,0) specials.
        let pairs = complementary_pairs(&r);
        let p = (1usize, 1usize);
        let expected = (
            r.e_lit[&(p, 1, 0)].min(r.e_lit[&(p, 1, 1)]),
            r.e_lit[&(p, 1, 0)].max(r.e_lit[&(p, 1, 1)]),
        );
        assert!(pairs.contains(&expected));
        let especial = (r.e_00[0].min(r.e_00[1]), r.e_00[0].max(r.e_00[1]));
        assert!(pairs.contains(&especial));
        // The M1/M2 gadget classes are genuinely non-singleton.
        assert!(classes
            .iter()
            .any(|(lo, hi)| lo.len() == 3 && hi.len() == 3));
    }

    #[test]
    fn s_with_z_costs_exactly_2() {
        // Covering S ∪ {z1,z2} is feasible with weight exactly 2
        // (complementary pairs), and no cheaper.
        let r = small();
        let mut target = r.s_set();
        target.insert(r.z[0]);
        target.insert(r.z[1]);
        assert_eq!(min_cover_weight(&r, &target), Some(rat(2, 1)));
    }

    #[test]
    fn lemma_3_5_forces_equal_weights() {
        let r = small();
        // Check a sample of complementary classes (all would be slow),
        // making sure both singleton (literal) and grouped (gadget M1/M2)
        // classes are exercised.
        let classes = complementary_classes(&r);
        let mut sample: Vec<&(Vec<usize>, Vec<usize>)> = classes
            .iter()
            .filter(|(lo, hi)| lo.len() > 1 || hi.len() > 1)
            .take(2)
            .collect();
        sample.extend(
            classes
                .iter()
                .filter(|(lo, hi)| lo.len() == 1 && hi.len() == 1)
                .take(3),
        );
        for class in sample {
            let imbalance = lemma_3_5_max_imbalance(&r, class).expect("feasible");
            assert_eq!(imbalance, Rational::zero(), "class {class:?}");
        }
    }

    #[test]
    fn lemma_3_6_forces_the_literal_edges() {
        let r = small();
        let p = (2usize, 1usize);
        let (max_other, min_sum0, max_sum0) =
            lemma_3_6_certificates(&r, p).expect("the bag is coverable");
        assert_eq!(
            max_other,
            Rational::zero(),
            "only e^{{k,b}}_p may carry weight"
        );
        assert_eq!(min_sum0, Rational::one());
        assert_eq!(max_sum0, Rational::one());
    }

    #[test]
    fn claim_d_is_infeasible_at_weight_2() {
        let r = small();
        let w = claim_d_min_weight(&r).expect("coverable in general");
        assert!(
            w > rat(2, 1),
            "S ∪ {{z1,z2,a1,a1'}} must cost more than 2, got {w}"
        );
    }
}
