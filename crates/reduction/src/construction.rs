//! The Section 3 reduction: from a 3CNF formula `φ` (n variables, m
//! clauses) to a hypergraph `H` with `ghw(H) <= 2  iff  fhw(H) <= 2  iff
//! φ satisfiable` (Theorem 3.2).
//!
//! Vertex inventory (paper notation → names here):
//! `S = Q × {1,2,3}` with `Q = [2n+3; m] ∪ {(0,1),(0,0),(1,0)}` →
//! `s(i.j|k)`; `A`/`A'` → `a(i.j)` / `a'(i.j)`; `Y`/`Y'` → `y1..` / `y1'..`;
//! `z1`, `z2`; and the two Lemma 3.1 gadget copies `a1..d2`, `a1'..d2'`.

use crate::cnf::Cnf;
use hypergraph::{Hypergraph, VertexSet};
use std::collections::HashMap;

/// A position `q ∈ Q`: one of the three specials or a pair
/// `(i, j) ∈ [2n+3; m]` (1-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QPos {
    /// The special element `(0, 1)`.
    S01,
    /// The special element `(0, 0)`.
    S00,
    /// The special element `(1, 0)`.
    S10,
    /// A regular position `(i, j)` with `1 <= i <= 2n+3`, `1 <= j <= m`.
    P(usize, usize),
}

impl QPos {
    fn name(&self) -> String {
        match self {
            QPos::S01 => "0.1".into(),
            QPos::S00 => "0.0".into(),
            QPos::S10 => "1.0".into(),
            QPos::P(i, j) => format!("{i}.{j}"),
        }
    }
}

/// A vertex-name registry during construction.
struct Registry {
    names: Vec<String>,
    ids: HashMap<String, usize>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            names: Vec::new(),
            ids: HashMap::new(),
        }
    }

    fn add(&mut self, name: String) -> usize {
        let id = self.names.len();
        assert!(
            self.ids.insert(name.clone(), id).is_none(),
            "duplicate vertex {name}"
        );
        self.names.push(name);
        id
    }
}

/// The constructed reduction instance with full id bookkeeping.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The source formula.
    pub cnf: Cnf,
    /// The constructed hypergraph `H`.
    pub hypergraph: Hypergraph,
    /// `2n + 3` (the row count of `[2n+3; m]`).
    pub rows: usize,
    /// `m` (the column count).
    pub cols: usize,
    /// `s(q|k)` vertex ids, `k ∈ 1..=3`.
    pub s: HashMap<(QPos, u8), usize>,
    /// `a_p` vertex ids for regular positions.
    pub a: HashMap<(usize, usize), usize>,
    /// `a'_p` vertex ids.
    pub a_prime: HashMap<(usize, usize), usize>,
    /// `y_1..y_n`.
    pub y: Vec<usize>,
    /// `y'_1..y'_n`.
    pub y_prime: Vec<usize>,
    /// `z1` and `z2`.
    pub z: [usize; 2],
    /// Gadget core vertices by paper name (`a1`, ..., `d2`, `a1'`, ..., `d2'`).
    pub core: HashMap<String, usize>,
    /// Edge ids: `e_p` for `p ∈ [2n+3;m]⁻`.
    pub e_p: HashMap<(usize, usize), usize>,
    /// Edge ids: `e_{y_i}`.
    pub e_y: Vec<usize>,
    /// Edge ids: `e^{k,side}_p` for `p ∈ [2n+3;m]⁻`, `k ∈ 1..=3`,
    /// `side ∈ {0, 1}`.
    pub e_lit: HashMap<((usize, usize), u8, u8), usize>,
    /// `e^0_{(0,0)}`, `e^1_{(0,0)}`.
    pub e_00: [usize; 2],
    /// `e^0_max`, `e^1_max`.
    pub e_max: [usize; 2],
}

impl Reduction {
    /// All regular positions in lexicographic order `(1,1) < (1,2) < ...`.
    pub fn positions(&self) -> Vec<(usize, usize)> {
        positions(self.rows, self.cols)
    }

    /// `[2n+3; m]⁻`: all regular positions except `max = (2n+3, m)`.
    pub fn positions_minus(&self) -> Vec<(usize, usize)> {
        let mut p = self.positions();
        p.pop();
        p
    }

    /// The full `S` vertex set.
    pub fn s_set(&self) -> VertexSet {
        self.s.values().copied().collect()
    }

    /// `S_q = (q | *)`: the three `S` vertices at position `q`.
    pub fn s_at(&self, q: QPos) -> VertexSet {
        (1..=3u8).map(|k| self.s[&(q, k)]).collect()
    }

    /// `A_p = {a_min, ..., a_p}` (inclusive prefix).
    pub fn a_prefix(&self, p: (usize, usize)) -> VertexSet {
        self.positions()
            .into_iter()
            .take_while(|&q| q <= p)
            .map(|q| self.a[&q])
            .collect()
    }

    /// `A̅_p = {a_p, ..., a_max}` (inclusive suffix).
    pub fn a_suffix(&self, p: (usize, usize)) -> VertexSet {
        self.positions()
            .into_iter()
            .skip_while(|&q| q < p)
            .map(|q| self.a[&q])
            .collect()
    }

    /// `A'_p = {a'_min, ..., a'_p}`.
    pub fn a_prime_prefix(&self, p: (usize, usize)) -> VertexSet {
        self.positions()
            .into_iter()
            .take_while(|&q| q <= p)
            .map(|q| self.a_prime[&q])
            .collect()
    }

    /// `A̅'_p = {a'_p, ..., a'_max}`.
    pub fn a_prime_suffix(&self, p: (usize, usize)) -> VertexSet {
        self.positions()
            .into_iter()
            .skip_while(|&q| q < p)
            .map(|q| self.a_prime[&q])
            .collect()
    }

    /// The `Z` set of the witness construction for an assignment `σ`:
    /// `{y_i | σ(x_i)} ∪ {y'_i | ¬σ(x_i)}`.
    pub fn z_set(&self, assignment: &[bool]) -> VertexSet {
        assignment
            .iter()
            .enumerate()
            .map(|(i, &v)| if v { self.y[i] } else { self.y_prime[i] })
            .collect()
    }
}

fn positions(rows: usize, cols: usize) -> Vec<(usize, usize)> {
    (1..=rows)
        .flat_map(|i| (1..=cols).map(move |j| (i, j)))
        .collect()
}

/// Builds the reduction hypergraph for `φ` (the Problem reduction of
/// Section 3).
pub fn build(cnf: &Cnf) -> Reduction {
    let n = cnf.num_vars;
    let m = cnf.num_clauses();
    assert!(
        n >= 1 && m >= 1,
        "reduction needs at least one variable and clause"
    );
    let rows = 2 * n + 3;
    let cols = m;
    let mut reg = Registry::new();

    // --- Vertices ---
    let mut s: HashMap<(QPos, u8), usize> = HashMap::new();
    let mut qs: Vec<QPos> = vec![QPos::S01, QPos::S00, QPos::S10];
    qs.extend(
        positions(rows, cols)
            .into_iter()
            .map(|(i, j)| QPos::P(i, j)),
    );
    for &q in &qs {
        for k in 1..=3u8 {
            s.insert((q, k), reg.add(format!("s({}|{k})", q.name())));
        }
    }
    let mut a = HashMap::new();
    let mut a_prime = HashMap::new();
    for p in positions(rows, cols) {
        a.insert(p, reg.add(format!("a({}.{})", p.0, p.1)));
    }
    for p in positions(rows, cols) {
        a_prime.insert(p, reg.add(format!("a'({}.{})", p.0, p.1)));
    }
    let y: Vec<usize> = (1..=n).map(|i| reg.add(format!("y{i}"))).collect();
    let y_prime: Vec<usize> = (1..=n).map(|i| reg.add(format!("y{i}'"))).collect();
    let z = [reg.add("z1".into()), reg.add("z2".into())];
    let mut core = HashMap::new();
    for name in ["a1", "a2", "b1", "b2", "c1", "c2", "d1", "d2"] {
        core.insert(name.to_string(), reg.add(name.to_string()));
        core.insert(format!("{name}'"), reg.add(format!("{name}'")));
    }

    // --- Building blocks ---
    let s_all: VertexSet = s.values().copied().collect();
    let s_at = |q: QPos| -> VertexSet { (1..=3u8).map(|k| s[&(q, k)]).collect() };
    let y_all: VertexSet = y.iter().copied().collect();
    let yp_all: VertexSet = y_prime.iter().copied().collect();
    let a_all: VertexSet = a.values().copied().collect();
    let ap_all: VertexSet = a_prime.values().copied().collect();
    let pos = positions(rows, cols);
    let max = *pos.last().unwrap();

    // M1 = S \ S_(0,1) ∪ {z1};  M2 = Y ∪ S_(0,1) ∪ {z2}
    let mut m1 = s_all.difference(&s_at(QPos::S01));
    m1.insert(z[0]);
    let mut m2 = y_all.union(&s_at(QPos::S01));
    m2.insert(z[1]);
    // M1' = S \ S_(1,0) ∪ {z1};  M2' = Y' ∪ S_(1,0) ∪ {z2}
    let mut m1p = s_all.difference(&s_at(QPos::S10));
    m1p.insert(z[0]);
    let mut m2p = yp_all.union(&s_at(QPos::S10));
    m2p.insert(z[1]);

    let mut edges: Vec<(String, VertexSet)> = Vec::new();
    let push = |edges: &mut Vec<(String, VertexSet)>, name: String, vs: VertexSet| -> usize {
        edges.push((name, vs));
        edges.len() - 1
    };

    // --- Step 1: the two gadget copies (Lemma 3.1) ---
    for (prefix, big1, big2) in [("", &m1, &m2), ("'", &m1p, &m2p)] {
        let v = |name: &str| core[&format!("{name}{prefix}")];
        let pair = |x: &str, yv: &str| VertexSet::from_iter([v(x), v(yv)]);
        let with = |x: &str, yv: &str, big: &VertexSet| {
            let mut e = big.clone();
            e.insert(v(x));
            e.insert(v(yv));
            e
        };
        // E_A
        push(
            &mut edges,
            format!("g{prefix}a1b1M1"),
            with("a1", "b1", big1),
        );
        push(
            &mut edges,
            format!("g{prefix}a2b2M2"),
            with("a2", "b2", big2),
        );
        push(&mut edges, format!("g{prefix}a1b2"), pair("a1", "b2"));
        push(&mut edges, format!("g{prefix}a2b1"), pair("a2", "b1"));
        push(&mut edges, format!("g{prefix}a1a2"), pair("a1", "a2"));
        // E_B
        push(
            &mut edges,
            format!("g{prefix}b1c1M1"),
            with("b1", "c1", big1),
        );
        push(
            &mut edges,
            format!("g{prefix}b2c2M2"),
            with("b2", "c2", big2),
        );
        push(&mut edges, format!("g{prefix}b1c2"), pair("b1", "c2"));
        push(&mut edges, format!("g{prefix}b2c1"), pair("b2", "c1"));
        push(&mut edges, format!("g{prefix}b1b2"), pair("b1", "b2"));
        push(&mut edges, format!("g{prefix}c1c2"), pair("c1", "c2"));
        // E_C
        push(
            &mut edges,
            format!("g{prefix}c1d1M1"),
            with("c1", "d1", big1),
        );
        push(
            &mut edges,
            format!("g{prefix}c2d2M2"),
            with("c2", "d2", big2),
        );
        push(&mut edges, format!("g{prefix}c1d2"), pair("c1", "d2"));
        push(&mut edges, format!("g{prefix}c2d1"), pair("c2", "d1"));
        push(&mut edges, format!("g{prefix}d1d2"), pair("d1", "d2"));
    }

    // --- Step 2: long-path edges ---
    let _a_prefix = |p: (usize, usize)| -> VertexSet {
        pos.iter().take_while(|&&q| q <= p).map(|q| a[q]).collect()
    };
    let a_suffix = |p: (usize, usize)| -> VertexSet {
        pos.iter().skip_while(|&&q| q < p).map(|q| a[q]).collect()
    };
    let ap_prefix = |p: (usize, usize)| -> VertexSet {
        pos.iter()
            .take_while(|&&q| q <= p)
            .map(|q| a_prime[q])
            .collect()
    };

    let mut e_p = HashMap::new();
    for &p in pos.iter().take(pos.len() - 1) {
        // e_p = A'_p ∪ A̅_p
        let e = ap_prefix(p).union(&a_suffix(p));
        e_p.insert(p, push(&mut edges, format!("e({}.{})", p.0, p.1), e));
    }
    let mut e_y = Vec::new();
    for i in 0..n {
        e_y.push(push(
            &mut edges,
            format!("ey{}", i + 1),
            VertexSet::from_iter([y[i], y_prime[i]]),
        ));
    }
    let mut e_lit = HashMap::new();
    for &p in pos.iter().take(pos.len() - 1) {
        let (_, j) = p;
        for k in 1..=3u8 {
            let lit = cnf.clauses[j - 1][(k - 1) as usize];
            let l = lit.var;
            // e^{k,0}_p
            let mut e0 = a_suffix(p);
            e0.union_with(&s_all);
            e0.remove(s[&(QPos::P(p.0, p.1), k)]);
            e0.union_with(&y_all);
            if !lit.positive {
                e0.remove(y[l]); // Y_l = Y \ {y_l}
            }
            e0.insert(z[0]);
            e_lit.insert(
                (p, k, 0),
                push(&mut edges, format!("e({}.{})^{k},0", p.0, p.1), e0),
            );
            // e^{k,1}_p
            let mut e1 = ap_prefix(p);
            e1.insert(s[&(QPos::P(p.0, p.1), k)]);
            e1.union_with(&yp_all);
            if lit.positive {
                e1.remove(y_prime[l]); // Y'_l = Y' \ {y'_l}
            }
            e1.insert(z[1]);
            e_lit.insert(
                (p, k, 1),
                push(&mut edges, format!("e({}.{})^{k},1", p.0, p.1), e1),
            );
        }
    }

    // --- Step 3: the connector edges ---
    let mut e000 = VertexSet::from_iter([core["a1"]]);
    e000.union_with(&a_all);
    e000.union_with(&s_all.difference(&s_at(QPos::S00)));
    e000.union_with(&y_all);
    e000.insert(z[0]);
    let e000 = push(&mut edges, "e(0.0)^0".into(), e000);
    let mut e001 = s_at(QPos::S00);
    e001.union_with(&yp_all);
    e001.insert(z[1]);
    let e001 = push(&mut edges, "e(0.0)^1".into(), e001);
    let mut em0 = s_all.difference(&s_at(QPos::P(max.0, max.1)));
    em0.union_with(&y_all);
    em0.insert(z[0]);
    let em0 = push(&mut edges, "e(max)^0".into(), em0);
    let mut em1 = VertexSet::from_iter([core["a1'"]]);
    em1.union_with(&ap_all);
    em1.union_with(&s_at(QPos::P(max.0, max.1)));
    em1.union_with(&yp_all);
    em1.insert(z[1]);
    let em1 = push(&mut edges, "e(max)^1".into(), em1);

    let edge_names: Vec<String> = edges.iter().map(|(n, _)| n.clone()).collect();
    let edge_sets: Vec<Vec<usize>> = edges.iter().map(|(_, v)| v.to_vec()).collect();
    let hypergraph = Hypergraph::from_parts(reg.names, edge_names, edge_sets);

    Reduction {
        cnf: cnf.clone(),
        hypergraph,
        rows,
        cols,
        s,
        a,
        a_prime,
        y,
        y_prime,
        z,
        core,
        e_p,
        e_y,
        e_lit,
        e_00: [e000, e001],
        e_max: [em0, em1],
    }
}

/// The standalone Lemma 3.1 gadget `H0` with fresh `M1`/`M2` vertex sets of
/// the given sizes — for gadget-level verification (exact `fhw`/`ghw` on
/// small `M`).
pub fn gadget(m1_size: usize, m2_size: usize) -> Hypergraph {
    let mut reg = Registry::new();
    let core: Vec<usize> = ["a1", "a2", "b1", "b2", "c1", "c2", "d1", "d2"]
        .iter()
        .map(|n| reg.add(n.to_string()))
        .collect();
    let m1: Vec<usize> = (0..m1_size).map(|i| reg.add(format!("m1_{i}"))).collect();
    let m2: Vec<usize> = (0..m2_size).map(|i| reg.add(format!("m2_{i}"))).collect();
    let v = |name: &str| -> usize {
        let idx = ["a1", "a2", "b1", "b2", "c1", "c2", "d1", "d2"]
            .iter()
            .position(|n| *n == name)
            .unwrap();
        core[idx]
    };
    let mut edges: Vec<(String, Vec<usize>)> = Vec::new();
    let with_m = |x: &str, yv: &str, m: &[usize], edges: &mut Vec<(String, Vec<usize>)>| {
        let mut e = vec![v(x), v(yv)];
        e.extend_from_slice(m);
        edges.push((format!("g{x}{yv}M"), e));
    };
    let pair = |x: &str, yv: &str, edges: &mut Vec<(String, Vec<usize>)>| {
        edges.push((format!("g{x}{yv}"), vec![v(x), v(yv)]));
    };
    with_m("a1", "b1", &m1, &mut edges);
    with_m("a2", "b2", &m2, &mut edges);
    pair("a1", "b2", &mut edges);
    pair("a2", "b1", &mut edges);
    pair("a1", "a2", &mut edges);
    with_m("b1", "c1", &m1, &mut edges);
    with_m("b2", "c2", &m2, &mut edges);
    pair("b1", "c2", &mut edges);
    pair("b2", "c1", &mut edges);
    pair("b1", "b2", &mut edges);
    pair("c1", "c2", &mut edges);
    with_m("c1", "d1", &m1, &mut edges);
    with_m("c2", "d2", &m2, &mut edges);
    pair("c1", "d2", &mut edges);
    pair("c2", "d1", &mut edges);
    pair("d1", "d2", &mut edges);
    let names = edges.iter().map(|(n, _)| n.clone()).collect();
    let sets = edges.into_iter().map(|(_, e)| e).collect();
    Hypergraph::from_parts(reg.names, names, sets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_the_formulas() {
        // Example 3.3: n = 3, m = 2 -> rows = 9, |Q| = 21, |S| = 63.
        let cnf = Cnf::example_3_3();
        let r = build(&cnf);
        assert_eq!(r.rows, 9);
        assert_eq!(r.cols, 2);
        assert_eq!(r.s.len(), (9 * 2 + 3) * 3);
        assert_eq!(r.a.len(), 18);
        assert_eq!(r.a_prime.len(), 18);
        let expected_vertices = 63 + 18 + 18 + 3 + 3 + 2 + 16;
        assert_eq!(r.hypergraph.num_vertices(), expected_vertices);
        // Edges: 32 gadget + (18-1) e_p + 3 e_y + 6*(18-1) literal + 4.
        let expected_edges = 32 + 17 + 3 + 6 * 17 + 4;
        assert_eq!(r.hypergraph.num_edges(), expected_edges);
    }

    #[test]
    fn example_3_3_edge_contents() {
        // Spot-check the worked example: e^{1,1}_{(i,1)} = A'_{(i,1)} ∪
        // S^1_{(i,1)} ∪ {y2', y3'} ∪ {z2} (first literal of clause 1 is x1).
        let r = build(&Cnf::example_3_3());
        let p = (3usize, 1usize);
        let e = r.e_lit[&(p, 1, 1)];
        let edge = r.hypergraph.edge(e);
        assert!(edge.contains(r.z[1]));
        assert!(edge.contains(r.s[&(QPos::P(3, 1), 1)]));
        assert!(
            !edge.contains(r.y_prime[0]),
            "y1' must be excluded (x1 positive)"
        );
        assert!(edge.contains(r.y_prime[1]));
        assert!(edge.contains(r.y_prime[2]));
        // A'_(3,1) = the first 2*... positions up to (3,1): (1,1),(1,2),(2,1),(2,2),(3,1).
        assert_eq!(r.a_prime_prefix(p).len(), 5);
        assert!(r.a_prime_prefix(p).is_subset(edge));
        // And the complementary side: e^{1,0} excludes s(p|1), includes all Y.
        let e0 = r.hypergraph.edge(r.e_lit[&(p, 1, 0)]);
        assert!(!e0.contains(r.s[&(QPos::P(3, 1), 1)]));
        assert!(e0.contains(r.y[0]) && e0.contains(r.y[1]) && e0.contains(r.y[2]));
        assert!(e0.contains(r.z[0]));
    }

    #[test]
    fn negative_literal_orientation() {
        // Second clause of Example 3.3 starts with ¬x1: e^{1,0}_{(i,2)}
        // excludes y1 while e^{1,1}_{(i,2)} keeps all of Y'.
        let r = build(&Cnf::example_3_3());
        let p = (2usize, 2usize);
        let e0 = r.hypergraph.edge(r.e_lit[&(p, 1, 0)]);
        let e1 = r.hypergraph.edge(r.e_lit[&(p, 1, 1)]);
        assert!(!e0.contains(r.y[0]));
        assert!(e0.contains(r.y[1]) && e0.contains(r.y[2]));
        assert!(
            e1.contains(r.y_prime[0]) && e1.contains(r.y_prime[1]) && e1.contains(r.y_prime[2])
        );
    }

    #[test]
    fn no_edge_covers_all_of_s() {
        // "In particular there is no edge that covers S completely."
        let r = build(&Cnf::example_3_3());
        let s_set = r.s_set();
        for e in r.hypergraph.edges() {
            assert!(!s_set.is_subset(e));
        }
    }

    #[test]
    fn no_isolated_vertices() {
        let r = build(&Cnf::example_3_3());
        assert!(!r.hypergraph.has_isolated_vertices());
    }

    #[test]
    fn gadget_shape() {
        let g = gadget(2, 2);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 16);
        // {a1,a2,b1,b2} is a clique: all 6 pairs inside common edges.
        let quad = ["a1", "a2", "b1", "b2"].map(|n| g.vertex_by_name(n).unwrap());
        for (i, &x) in quad.iter().enumerate() {
            for &y in quad.iter().skip(i + 1) {
                assert!(
                    g.edges().iter().any(|e| e.contains(x) && e.contains(y)),
                    "{x},{y} not adjacent"
                );
            }
        }
    }
}
