//! Theorem 6.23 / Corollary 6.25: for hypergraphs of bounded VC-dimension
//! (in particular BMIP classes, Lemma 6.24), an FHD of width `k` converts
//! into a GHD — even an HD — of width `O(k · log k)` in polynomial time, by
//! replacing each fractional bag cover with an integral one. The integrality
//! gap is controlled by the Ding–Seymour–Winkler bound
//! `tau/tau* <= 2·vc·log(11·tau*)` on the dual.

use arith::Rational;
use decomp::{Decomposition, Node};
use hypergraph::Hypergraph;

/// How to pick the integral cover per bag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverMode {
    /// Exact `rho(B_u)` by branch-and-bound (certifies the theorem bound).
    Exact,
    /// Greedy set cover (`ln n` guarantee, polynomial).
    Greedy,
}

/// Replaces every node's weight function by an integral edge cover of its
/// bag, yielding a GHD with the same tree and bags.
pub fn ghd_from_fhd(h: &Hypergraph, d: &Decomposition, mode: CoverMode) -> Decomposition {
    let mut out = d.clone();
    for u in 0..out.len() {
        let bag = out.node(u).bag.clone();
        let cover = match mode {
            CoverMode::Exact => cover::integral_cover(h, &bag),
            CoverMode::Greedy => cover::greedy_cover(h, &bag),
        }
        .expect("bags of a valid FHD are coverable");
        *out.node_mut(u) = Node::integral(bag, cover.edges);
    }
    out
}

/// The Theorem 6.23 integrality-gap bound:
/// `cigap(H) <= max(1, 2^{vc(H)+2} · log2(11 · rho*))` (we use `log2`,
/// which upper-bounds the paper's bound for any smaller log base).
pub fn cigap_bound(vc: usize, rho_star: &Rational) -> f64 {
    let log = (11.0 * rho_star.to_f64()).log2();
    (2f64.powi(vc as i32 + 2) * log).max(1.0)
}

/// The small-instance pipeline: exact FHD, then integral conversion.
/// Returns `(fhw, ghd)`; `None` for oversized or degenerate inputs.
pub fn approx_ghw_via_fhw(h: &Hypergraph, mode: CoverMode) -> Option<(Rational, Decomposition)> {
    let (fhw, fhd) = crate::exact::fhw_exact(h, None)?;
    Some((fhw, ghd_from_fhd(h, &fhd, mode)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate;
    use hypergraph::{generators, properties};

    #[test]
    fn conversion_yields_valid_ghds() {
        for (h, name) in [
            (generators::cycle(3), "C3"),
            (generators::cycle(6), "C6"),
            (generators::clique(5), "K5"),
            (generators::example_5_1(4), "Ex5.1"),
        ] {
            for mode in [CoverMode::Exact, CoverMode::Greedy] {
                let (_, g) = approx_ghw_via_fhw(&h, mode).unwrap();
                assert_eq!(validate::validate_ghd(&h, &g), Ok(()), "{name} {mode:?}");
            }
        }
    }

    #[test]
    fn theorem_6_23_ratio_bound_holds() {
        for (h, name) in [
            (generators::cycle(3), "C3"),
            (generators::clique(6), "K6"),
            (generators::example_5_1(5), "Ex5.1(5)"),
            (generators::example_4_3(), "Ex4.3"),
            (generators::random_bip(9, 6, 2, 3, 1), "randBIP"),
        ] {
            let (fhw, g) = approx_ghw_via_fhw(&h, CoverMode::Exact).unwrap();
            let vc = properties::vc_dimension(&h);
            let ratio = g.width().to_f64() / fhw.to_f64();
            let bound = cigap_bound(vc, &fhw);
            assert!(
                ratio <= bound + 1e-9,
                "{name}: ratio {ratio} > bound {bound} (vc={vc}, fhw={fhw})"
            );
        }
    }

    #[test]
    fn lemma_6_24_bmip_implies_bounded_vc() {
        // vc(H) <= c + i whenever c-miwidth(H) <= i.
        for (h, name) in [
            (generators::example_4_3(), "Ex4.3"),
            (generators::grid(3, 3), "grid"),
            (generators::random_bip(10, 7, 2, 4, 5), "randBIP"),
        ] {
            let vc = properties::vc_dimension(&h);
            for c in 1..=3usize {
                let i = properties::multi_intersection_width(&h, c);
                assert!(vc <= c + i, "{name}: vc {vc} > c {c} + i {i}");
            }
        }
    }

    #[test]
    fn greedy_not_much_worse_than_exact() {
        let h = generators::clique(6);
        let (_, exact) = approx_ghw_via_fhw(&h, CoverMode::Exact).unwrap();
        let (_, greedy) = approx_ghw_via_fhw(&h, CoverMode::Greedy).unwrap();
        assert!(greedy.width() <= exact.width() * Rational::from(2usize));
    }
}
