//! Algorithm 3: `(k, ε, c)-frac-decomp` — the alternating algorithm of
//! Section 6.1 deciding whether `H` has an FHD of width `<= k + ε` with
//! `c`-bounded fractional part satisfying the weak special condition
//! (Theorem 6.16), implemented deterministically with memoization.
//!
//! Per recursion step the algorithm guesses the *integral* part `S`
//! (`|S| = ℓ <= k + ε` edges of weight 1) and the *fractional shadow*
//! `W_s` (`|W_s| <= c` vertices), checks
//!
//! * (2.a) some `γ` of weight `<= k + ε − ℓ` covers `W_s` (an LP),
//! * (2.b) `∀e ∈ edges(C_r): e ∩ (V(R) ∪ W_r) ⊆ V(S) ∪ W_s`,
//! * (2.c) `(V(S) ∪ W_s) ∩ C_r ≠ ∅`,
//!
//! and recurses on the `[V(S) ∪ W_s]`-components inside `C_r`.

use arith::Rational;
use decomp::{Decomposition, Node};
use hypergraph::{components, Hypergraph, VertexSet};
use lp::{Cmp, LinearProgram, LpResult};
use std::collections::HashMap;

/// Parameters of Algorithm 3.
#[derive(Clone, Debug)]
pub struct FracDecompParams {
    /// Target width `k`.
    pub k: Rational,
    /// Slack `ε > 0`.
    pub eps: Rational,
    /// Fractional-part bound `c` (Definition 6.2). Lemma 6.4 supplies
    /// `c = 2ik² + 4k³i/ε` for `i`-BIP inputs; see
    /// [`crate::approx_bip::lemma_6_4_c`].
    pub c: usize,
}

/// Runs `(k, ε, c)-frac-decomp`; on acceptance returns the witness FHD
/// (width `<= k + ε`, weak special condition; Theorem 6.16).
pub fn frac_decomp(h: &Hypergraph, params: &FracDecompParams) -> Option<Decomposition> {
    assert!(params.eps.is_positive(), "ε must be positive");
    if h.has_isolated_vertices() {
        return None;
    }
    let budget = &params.k + &params.eps;
    let l_max_big = budget.floor();
    let l_max = l_max_big.to_i64().unwrap_or(0).max(0) as usize;
    let mut search = FracSearch {
        h,
        budget,
        l_max,
        c: params.c,
        memo: HashMap::new(),
        plans: Vec::new(),
    };
    let root = h.all_vertices();
    let plan = search.decompose(&root, &VertexSet::new())?;
    Some(build(h, &search, plan))
}

/// Upper-bounds `fhw(H)` by running Algorithm 3 on a decreasing sequence of
/// integer-and-half budgets; returns the smallest accepted `k` in halves
/// together with its witness. A convenience for callers without an exact
/// oracle (completeness is relative to `c`, as everywhere in Section 6.1).
pub fn fhw_frac_search(
    h: &Hypergraph,
    max_k: usize,
    c: usize,
) -> Option<(Rational, Decomposition)> {
    let eps = Rational::from_frac(1, 4);
    let mut best: Option<(Rational, Decomposition)> = None;
    for halves in (2..=2 * max_k).rev() {
        let k = Rational::from_frac(halves as i64, 2) - eps.clone();
        match frac_decomp(h, &FracDecompParams { k: k.clone(), eps: eps.clone(), c }) {
            Some(d) => {
                let width = d.width();
                best = Some((width, d));
            }
            None => break,
        }
    }
    best
}

struct FracPlan {
    /// Weight-1 edges `S`.
    sep: Vec<usize>,
    /// The fractional shadow `W_s`.
    ws: VertexSet,
    /// The fractional weights found by the LP (edge, weight), disjoint
    /// from `sep`.
    gamma: Vec<(usize, Rational)>,
    /// Children as `(component, plan)` pairs.
    children: Vec<(VertexSet, usize)>,
}

struct FracSearch<'a> {
    h: &'a Hypergraph,
    budget: Rational,
    l_max: usize,
    c: usize,
    memo: HashMap<(VertexSet, VertexSet), Option<usize>>,
    plans: Vec<FracPlan>,
}

impl<'a> FracSearch<'a> {
    /// `comp` is the current `[...]`-component; `interface` is
    /// `(V(R) ∪ W_r) ∩ ⋃ edges(comp)` — the part of the parent cover that
    /// the checks can see.
    fn decompose(&mut self, comp: &VertexSet, interface: &VertexSet) -> Option<usize> {
        let key = (comp.clone(), interface.clone());
        if let Some(hit) = self.memo.get(&key) {
            return *hit;
        }
        let comp_edges = self.h.edges_intersecting(comp);
        let neighborhood = self.h.union_of_edges(comp_edges.iter().copied());
        let candidates: Vec<usize> = (0..self.h.num_edges())
            .filter(|&e| self.h.edge(e).intersects(&neighborhood))
            .collect();
        // W_s candidates: interface ∪ comp (other vertices are useless).
        let w_space: Vec<usize> = interface.union(comp).to_vec();
        let mut chosen = Vec::new();
        let res = self.dfs(
            comp,
            interface,
            &comp_edges,
            &candidates,
            &w_space,
            0,
            &mut chosen,
        );
        self.memo.insert(key, res);
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        comp: &VertexSet,
        interface: &VertexSet,
        comp_edges: &[usize],
        candidates: &[usize],
        w_space: &[usize],
        start: usize,
        chosen: &mut Vec<usize>,
    ) -> Option<usize> {
        if let Some(plan) = self.try_guess(comp, interface, comp_edges, chosen, w_space) {
            return Some(plan);
        }
        if chosen.len() == self.l_max {
            return None;
        }
        for (i, &e) in candidates.iter().enumerate().skip(start) {
            chosen.push(e);
            let res = self.dfs(
                comp,
                interface,
                comp_edges,
                candidates,
                w_space,
                i + 1,
                chosen,
            );
            chosen.pop();
            if res.is_some() {
                return res;
            }
        }
        None
    }

    /// With `S = chosen` fixed, enumerates the fractional shadows `W_s`.
    fn try_guess(
        &mut self,
        comp: &VertexSet,
        interface: &VertexSet,
        comp_edges: &[usize],
        chosen: &[usize],
        w_space: &[usize],
    ) -> Option<usize> {
        let vs = self.h.union_of_edges(chosen.iter().copied());
        // (2.b) pre-check: the uncovered part of the interface must fit in W_s.
        let missing = interface.difference(&vs);
        if missing.len() > self.c {
            return None;
        }
        // Enumerate W_s ⊇ missing with |W_s| <= c from w_space.
        let extras: Vec<usize> = w_space
            .iter()
            .copied()
            .filter(|&v| !vs.contains(v) && !missing.contains(v))
            .collect();
        let slots = self.c - missing.len();
        let mut subset = Vec::new();
        self.enumerate_ws(
            comp, comp_edges, chosen, &vs, &missing, &extras, slots, 0, &mut subset,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_ws(
        &mut self,
        comp: &VertexSet,
        comp_edges: &[usize],
        chosen: &[usize],
        vs: &VertexSet,
        missing: &VertexSet,
        extras: &[usize],
        slots: usize,
        start: usize,
        subset: &mut Vec<usize>,
    ) -> Option<usize> {
        let mut ws = missing.clone();
        ws.extend(subset.iter().copied());
        if let Some(plan) = self.check_guess(comp, comp_edges, chosen, vs, &ws) {
            return Some(plan);
        }
        if subset.len() == slots {
            return None;
        }
        for (i, &v) in extras.iter().enumerate().skip(start) {
            subset.push(v);
            let res = self.enumerate_ws(
                comp, comp_edges, chosen, vs, missing, extras, slots, i + 1, subset,
            );
            subset.pop();
            if res.is_some() {
                return res;
            }
        }
        None
    }

    fn check_guess(
        &mut self,
        comp: &VertexSet,
        comp_edges: &[usize],
        chosen: &[usize],
        vs: &VertexSet,
        ws: &VertexSet,
    ) -> Option<usize> {
        let mut basis = vs.union(ws);
        if basis.is_empty() {
            return None;
        }
        // (2.c)
        if !basis.intersects(comp) {
            return None;
        }
        // (2.a): LP covering W_s \ V(S) with weight <= k + ε − ℓ on edges
        // outside S.
        let need: VertexSet = ws.difference(vs);
        let slack = &self.budget - &Rational::from(chosen.len());
        if slack.is_negative() {
            return None;
        }
        let gamma = self.cover_ws(&need, chosen, &slack, &basis)?;
        // Recurse on [V(S) ∪ W_s]-components inside comp.
        let subs: Vec<VertexSet> = components::components(self.h, &basis)
            .into_iter()
            .filter(|sub| sub.is_subset(comp))
            .collect();
        let mut children = Vec::new();
        for sub in &subs {
            let sub_edges = self.h.edges_intersecting(sub);
            let span = self.h.union_of_edges(sub_edges.iter().copied());
            let interface = basis.intersection(&span);
            let plan = self.decompose(sub, &interface)?;
            children.push((sub.clone(), plan));
        }
        // Edge coverage: every component edge lies in the basis or descends.
        for &e in comp_edges {
            let edge = self.h.edge(e);
            if edge.is_subset(&basis) {
                continue;
            }
            let remainder = edge.difference(&basis);
            if !subs.iter().any(|sub| remainder.is_subset(sub)) {
                basis.clear();
                return None;
            }
        }
        self.plans.push(FracPlan {
            sep: chosen.to_vec(),
            ws: ws.clone(),
            gamma,
            children,
        });
        Some(self.plans.len() - 1)
    }

    /// The (2.a) LP: find `γ` (over edges outside `sep`) with
    /// `need ⊆ B(γ)`, `weight(γ) <= slack`, and — so that the witness
    /// satisfies `B(γ_s) = V(S) ∪ W_s` (the property Lemmas 6.12–6.15
    /// rely on) — *no* vertex outside `basis = V(S) ∪ W_s` fully covered.
    /// Strictness of that last condition is handled by maximizing a slack
    /// variable `t` with `coverage(v) + t <= 1` for every outside vertex:
    /// a conforming `γ` exists iff the optimum has `t > 0` (or there are
    /// no constraints at all).
    fn cover_ws(
        &self,
        need: &VertexSet,
        sep: &[usize],
        slack: &Rational,
        basis: &VertexSet,
    ) -> Option<Vec<(usize, Rational)>> {
        if need.is_empty() {
            return Some(Vec::new());
        }
        let usable: Vec<usize> = (0..self.h.num_edges())
            .filter(|e| !sep.contains(e) && self.h.edge(*e).intersects(need))
            .collect();
        let t_var = usable.len();
        let mut prog = LinearProgram::maximize(t_var + 1);
        prog.set_objective(t_var, Rational::one());
        for v in need.iter() {
            let coeffs: Vec<(usize, Rational)> = usable
                .iter()
                .enumerate()
                .filter(|(_, &e)| self.h.edge(e).contains(v))
                .map(|(col, _)| (col, Rational::one()))
                .collect();
            if coeffs.is_empty() {
                return None;
            }
            prog.add_constraint(coeffs, Cmp::Ge, Rational::one());
        }
        // weight(γ) <= slack, and γ : E → [0, 1].
        prog.add_constraint(
            (0..usable.len()).map(|col| (col, Rational::one())).collect(),
            Cmp::Le,
            slack.clone(),
        );
        for col in 0..usable.len() {
            prog.add_constraint(vec![(col, Rational::one())], Cmp::Le, Rational::one());
        }
        // Outside vertices must stay strictly below full coverage.
        let outside: Vec<usize> = (0..self.h.num_vertices())
            .filter(|&v| !basis.contains(v))
            .collect();
        for &v in &outside {
            let mut coeffs: Vec<(usize, Rational)> = usable
                .iter()
                .enumerate()
                .filter(|(_, &e)| self.h.edge(e).contains(v))
                .map(|(col, _)| (col, Rational::one()))
                .collect();
            if coeffs.is_empty() {
                continue;
            }
            coeffs.push((t_var, Rational::one()));
            prog.add_constraint(coeffs, Cmp::Le, Rational::one());
        }
        prog.add_constraint(vec![(t_var, Rational::one())], Cmp::Le, Rational::one());
        match prog.solve() {
            LpResult::Optimal { value, solution } if value.is_positive() => Some(
                solution
                    .into_iter()
                    .take(usable.len())
                    .enumerate()
                    .filter(|(_, w)| !w.is_zero())
                    .map(|(col, w)| (usable[col], w))
                    .collect(),
            ),
            _ => None,
        }
    }
}

/// Witness construction (the `δ(τ)` of Section 6.1): bags are
/// `B_s = (V(S) ∪ W_s) ∩ (C ∪ B_r)` with `B_root = V(S) ∪ W_s`.
fn build(h: &Hypergraph, search: &FracSearch, plan: usize) -> Decomposition {
    fn node_for(h: &Hypergraph, p: &FracPlan, clip: Option<&VertexSet>) -> Node {
        let mut bag = h.union_of_edges(p.sep.iter().copied());
        bag.union_with(&p.ws);
        if let Some(c) = clip {
            bag.intersect_with(c);
        }
        let mut weights: Vec<(usize, Rational)> =
            p.sep.iter().map(|&e| (e, Rational::one())).collect();
        for (e, w) in &p.gamma {
            weights.push((*e, w.clone()));
        }
        Node { bag, weights }
    }

    fn attach(
        h: &Hypergraph,
        search: &FracSearch,
        plan: usize,
        d: &mut Decomposition,
        parent: Option<(usize, VertexSet)>,
    ) {
        let p = &search.plans[plan];
        let id = match parent {
            None => {
                *d.node_mut(0) = node_for(h, p, None);
                0
            }
            Some((pid, clip)) => d.add_child(pid, node_for(h, p, Some(&clip))),
        };
        let bag = d.node(id).bag.clone();
        for (comp, c) in &p.children {
            // The witness-tree clip of Section 6.1: B_s = B(γ_s) ∩ (C ∪ B_r).
            let clip = comp.union(&bag);
            attach(h, search, *c, d, Some((id, clip)));
        }
    }

    let mut d = Decomposition::new(Node::integral(VertexSet::new(), []));
    attach(h, search, plan, &mut d, None);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use decomp::validate;
    use hypergraph::generators;

    fn params(k: Rational, eps: Rational, c: usize) -> FracDecompParams {
        FracDecompParams { k, eps, c }
    }

    #[test]
    fn acyclic_accepted() {
        let h = generators::path(5);
        let d = frac_decomp(&h, &params(Rational::one(), rat(1, 2), 0)).expect("paths: fhw 1");
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(d.width() <= rat(3, 2));
    }

    #[test]
    fn triangle_with_fractional_shadow() {
        // k = 1, ε = 1/2: the width budget 3/2 forces the genuinely
        // fractional cover; c = 3 lets W_s hold the triangle.
        let h = generators::cycle(3);
        let d = frac_decomp(&h, &params(Rational::one(), rat(1, 2), 3)).expect("fhw(C3) = 3/2");
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(d.width() <= rat(3, 2));
        assert!(validate::validate_weak_special(&h, &d).is_ok());
        assert!(validate::has_c_bounded_fractional_part(&h, &d, 3));
    }

    #[test]
    fn triangle_rejected_below_three_halves() {
        let h = generators::cycle(3);
        assert!(frac_decomp(&h, &params(Rational::one(), rat(1, 3), 3)).is_none());
    }

    #[test]
    fn cycles_accepted_at_2() {
        let h = generators::cycle(5);
        let d = frac_decomp(&h, &params(rat(3, 2), rat(1, 2), 2)).expect("fhw(C5) = 2");
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(d.width() <= rat(2, 1));
    }

    #[test]
    fn example_5_1_exploits_fractional_part() {
        // rho*(H_n) = 2 - 1/n; a single node with S = {big edge} and W_s
        // = {v0} covered fractionally realizes width 2 - 1/n <= k + ε
        // with k = 1, ε = 1 - 1/n... use ε = 1 for simplicity.
        let h = generators::example_5_1(4);
        let d = frac_decomp(&h, &params(Rational::one(), Rational::one(), 1))
            .expect("fhw <= 2 - 1/4");
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(d.width() <= rat(2, 1));
    }

    #[test]
    fn zero_c_reduces_to_integral_covers() {
        // With c = 0 the algorithm can only build GHD-like covers, so the
        // triangle needs budget 2.
        let h = generators::cycle(3);
        assert!(frac_decomp(&h, &params(Rational::one(), rat(1, 2), 0)).is_none());
        assert!(frac_decomp(&h, &params(rat(3, 2), rat(1, 2), 0)).is_some());
    }

    #[test]
    fn frac_search_brackets_the_optimum() {
        let h = generators::cycle(3);
        let (w, d) = fhw_frac_search(&h, 3, 3).expect("triangle decomposes");
        assert!(w >= rat(3, 2));
        assert!(w <= rat(7, 4)); // 3/2 budgeted with eps = 1/4
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
    }

    #[test]
    fn theorem_6_16_soundness_on_corpus() {
        // Whatever frac-decomp accepts must validate at width k + ε.
        for seed in 0..3u64 {
            let h = generators::random_bounded_degree(8, 5, 2, 3, seed);
            let p = params(rat(2, 1), rat(1, 2), 2);
            if let Some(d) = frac_decomp(&h, &p) {
                assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "seed {seed}");
                assert!(d.width() <= rat(5, 2), "seed {seed}");
            }
        }
    }
}
