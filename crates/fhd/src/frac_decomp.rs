//! Algorithm 3: `(k, ε, c)-frac-decomp` — the alternating algorithm of
//! Section 6.1 deciding whether `H` has an FHD of width `<= k + ε` with
//! `c`-bounded fractional part satisfying the weak special condition
//! (Theorem 6.16), implemented deterministically as a decision strategy
//! over the shared [`solver`] search engine.
//!
//! Per search state the strategy guesses the *integral* part `S`
//! (`|S| = ℓ <= k + ε` edges of weight 1) and the *fractional shadow*
//! `W_s` (`|W_s| <= c` vertices); the candidate bag is `V(S) ∪ W_s` and
//! admission checks
//!
//! * (2.a) some `γ` of weight `<= k + ε − ℓ` covers `W_s` (an LP),
//! * (2.b) `∀e ∈ edges(C_r): e ∩ (V(R) ∪ W_r) ⊆ V(S) ∪ W_s` (engine:
//!   `conn ⊆ bag`),
//! * (2.c) `(V(S) ∪ W_s) ∩ C_r ≠ ∅` (engine progress check),
//!
//! with the engine recursing on the `[V(S) ∪ W_s]`-components inside `C_r`.

use arith::Rational;
use cover::ShardedCache;
use decomp::Decomposition;
use hypergraph::{Hypergraph, VertexSet};
use lp::{Cmp, LinearProgram, LpResult};
use solver::{
    Admission, CandidateStream, EngineOptions, Guess, SearchContext, SearchState, SearchStats,
    WidthSolver,
};
use std::sync::Arc;

/// Parameters of Algorithm 3.
#[derive(Clone, Debug)]
pub struct FracDecompParams {
    /// Target width `k`.
    pub k: Rational,
    /// Slack `ε > 0`.
    pub eps: Rational,
    /// Fractional-part bound `c` (Definition 6.2). Lemma 6.4 supplies
    /// `c = 2ik² + 4k³i/ε` for `i`-BIP inputs; see
    /// [`crate::approx_bip::lemma_6_4_c`].
    pub c: usize,
}

/// Runs `(k, ε, c)-frac-decomp`; on acceptance returns the witness FHD
/// (width `<= k + ε`, weak special condition; Theorem 6.16).
pub fn frac_decomp(h: &Hypergraph, params: &FracDecompParams) -> Option<Decomposition> {
    frac_decomp_with_stats(h, params, EngineOptions::default()).0
}

/// As [`frac_decomp`], also reporting the engine counters, with explicit
/// scheduling. Algorithm 3 is a decision strategy, so it runs sequentially
/// unless [`EngineOptions::speculate`] lets it race `(S, W_s)` guesses
/// across the worker pool, aborting sibling LPs at the first witness.
pub fn frac_decomp_with_stats(
    h: &Hypergraph,
    params: &FracDecompParams,
    opts: EngineOptions,
) -> (Option<Decomposition>, SearchStats) {
    assert!(params.eps.is_positive(), "ε must be positive");
    if h.has_isolated_vertices() {
        return (None, SearchStats::default());
    }
    let warm = solver::pool_is_warm();
    let key = format!(
        "k={:?};eps={:?};c={};prep={};rp={};backend=auto",
        params.k, params.eps, params.c, opts.prep, opts.reuse_prices
    );
    let reuse = opts.reuse_results && !opts.speculate;
    let (result, mut stats) = prep::cached_query(h, "result-frac-decomp", key, reuse, || {
        // Decision profile: duplicate-edge and twin-vertex collapse only —
        // the passes whose lifts preserve the weak special condition. The
        // `c` bound is checked on the *reduced* instance, so acceptance is
        // one-sided monotone: anything the unprepped algorithm accepts is
        // still accepted (an FHD with a c-bounded part projects onto the
        // collapsed instance), and everything accepted lifts to a valid
        // width-(k+ε) witness of `h` — but collapsed twins need fewer
        // `W_s` slots, so prep can accept where the raw algorithm's
        // c-relative completeness gave up.
        let (result, stats) = prep::run_decision(h, opts.prep, |block| {
            let (d, s) = frac_decomp_piece(block, params, opts);
            (d.map(|d| ((), d)), s)
        });
        (result.map(|(_, d)| d), stats)
    });
    stats.pool_reuse = usize::from(warm);
    (result, stats)
}

/// Runs Algorithm 3 proper on an (already preprocessed) instance.
fn frac_decomp_piece(
    h: &Hypergraph,
    params: &FracDecompParams,
    opts: EngineOptions,
) -> (Option<Decomposition>, SearchStats) {
    let budget = &params.k + &params.eps;
    let l_max_big = budget.floor();
    let l_max = l_max_big.to_i64().unwrap_or(0).max(0) as usize;
    let session = prep::SessionCache::open(h, "frac-shadow-lp", opts.reuse_prices);
    let strategy = Arc::new(FracDecomp {
        budget,
        l_max,
        c: params.c,
        shadow: Arc::clone(&session.cache),
    });
    let cx = SearchContext::with_options(opts);
    let result = cx.run(h, &strategy).map(|(_, d)| d);
    let mut stats = cx.stats();
    (stats.price_hits, stats.price_misses, stats.price_warm_hits) = session.deltas();
    (result, stats)
}

/// Upper-bounds `fhw(H)` by running Algorithm 3 on a decreasing sequence of
/// integer-and-half budgets; returns the smallest accepted `k` in halves
/// together with its witness. A convenience for callers without an exact
/// oracle (completeness is relative to `c`, as everywhere in Section 6.1).
pub fn fhw_frac_search(
    h: &Hypergraph,
    max_k: usize,
    c: usize,
) -> Option<(Rational, Decomposition)> {
    let eps = Rational::from_frac(1, 4);
    let mut best: Option<(Rational, Decomposition)> = None;
    for halves in (2..=2 * max_k).rev() {
        let k = Rational::from_frac(halves as i64, 2) - eps.clone();
        match frac_decomp(
            h,
            &FracDecompParams {
                k: k.clone(),
                eps: eps.clone(),
                c,
            },
        ) {
            Some(d) => {
                let width = d.width();
                best = Some((width, d));
            }
            None => break,
        }
    }
    best
}

/// The Algorithm 3 strategy: streams `(S, W_s)` pairs combinatorially; the
/// LP for the fractional part runs at admission time, so the engine's
/// first-success cutoff skips it for losing guesses.
///
/// The `(S, W_s)` shadow space is exponential in `c` by nature (that is
/// Algorithm 3's guess space), which is exactly why the enumeration is a
/// lazy two-level stream — the outer level walks integral parts `S`, the
/// inner level walks shadows `W_s` for the current `S` — so the engine
/// holds one guess at a time and a first witness leaves the rest of the
/// space unenumerated.
struct FracDecomp {
    budget: Rational,
    l_max: usize,
    c: usize,
    /// Memoized (2.a) LPs: `(budget, S, W_s)` fully determines the shadow
    /// cover, and the same `(S, W_s)` pair is guessed again and again
    /// across sibling search states — and across *calls* at one budget
    /// when the session is backed by the cross-call registry (the
    /// PTAAS-style iteration loops re-run identical budgets).
    shadow: Arc<ShadowCache>,
}

/// `(budget, sorted separator, shadow) -> γ` memo for the (2.a) LP.
type ShadowCache = ShardedCache<(Rational, Vec<usize>, VertexSet), Option<Vec<(usize, Rational)>>>;

impl WidthSolver for FracDecomp {
    type Cost = Rational;

    fn is_decision(&self) -> bool {
        true
    }

    fn candidates<'a>(&'a self, h: &'a Hypergraph, state: SearchState<'a>) -> CandidateStream<'a> {
        let neighborhood = h.union_of_edges(state.comp_edges.iter().copied());
        let candidates: Vec<usize> = (0..h.num_edges())
            .filter(|&e| h.edge(e).intersects(&neighborhood))
            .collect();
        // W_s candidates: interface ∪ comp (other vertices are useless).
        let w_space: Vec<usize> = state.conn.union(state.comp).to_vec();
        let c = self.c;
        let seps =
            std::iter::once(Vec::new()).chain(solver::stream_subsets_up_to(candidates, self.l_max));
        let stream = seps.filter_map(move |sep| {
            let vs = h.union_of_edges(sep.iter().copied());
            // (2.b) pre-check: the uncovered part of the interface must fit
            // in W_s.
            let missing = state.conn.difference(&vs);
            if missing.len() > c {
                return None;
            }
            let extras: Vec<usize> = w_space
                .iter()
                .copied()
                .filter(|&v| !vs.contains(v) && !missing.contains(v))
                .collect();
            let slots = c - missing.len();
            let shadows =
                std::iter::once(Vec::new()).chain(solver::stream_subsets_up_to(extras, slots));
            let comp = state.comp;
            let inner = shadows.filter_map(move |shadow| {
                let mut ws = missing.clone();
                ws.extend(shadow.iter().copied());
                // (2.c) pre-check: V(S) ∪ W_s must eat into the component —
                // filtered here so the admission LP never runs on
                // structurally hopeless guesses.
                if !vs.intersects(comp) && !ws.intersects(comp) {
                    return None;
                }
                Some(Guess {
                    edges: sep.clone(),
                    extra: ws,
                })
            });
            Some(inner)
        });
        CandidateStream::new(stream.flatten())
    }

    fn admit(
        &self,
        h: &Hypergraph,
        _state: SearchState<'_>,
        guess: &Guess,
        _bound: Option<&Rational>,
    ) -> Option<Admission<Rational>> {
        let vs = h.union_of_edges(guess.edges.iter().copied());
        let bag = vs.union(&guess.extra);
        if bag.is_empty() {
            return None;
        }
        // (2.a): LP covering W_s \ V(S) with weight <= k + ε − ℓ on edges
        // outside S.
        let need = bag.difference(&vs);
        let slack = &self.budget - &Rational::from(guess.edges.len());
        if slack.is_negative() {
            return None;
        }
        let key = (
            self.budget.clone(),
            guess.edges.clone(),
            guess.extra.clone(),
        );
        let gamma = self
            .shadow
            .get_or_insert_with(&key, || cover_shadow(h, &need, &guess.edges, &slack, &bag))?;
        let mut weights: Vec<(usize, Rational)> =
            guess.edges.iter().map(|&e| (e, Rational::one())).collect();
        let mut cost = Rational::from(weights.len());
        for (e, w) in gamma {
            cost = &cost + &w;
            weights.push((e, w));
        }
        Some(Admission {
            split: bag.clone(),
            bag,
            cost,
            weights,
        })
    }
}

/// The (2.a) LP: find `γ` (over edges outside `sep`) with
/// `need ⊆ B(γ)`, `weight(γ) <= slack`, and — so that the witness
/// satisfies `B(γ_s) = V(S) ∪ W_s` (the property Lemmas 6.12–6.15
/// rely on) — *no* vertex outside `basis = V(S) ∪ W_s` fully covered.
/// Strictness of that last condition is handled by maximizing a slack
/// variable `t` with `coverage(v) + t <= 1` for every outside vertex:
/// a conforming `γ` exists iff the optimum has `t > 0` (or there are
/// no constraints at all).
fn cover_shadow(
    h: &Hypergraph,
    need: &VertexSet,
    sep: &[usize],
    slack: &Rational,
    basis: &VertexSet,
) -> Option<Vec<(usize, Rational)>> {
    if need.is_empty() {
        return Some(Vec::new());
    }
    let usable: Vec<usize> = (0..h.num_edges())
        .filter(|e| !sep.contains(e) && h.edge(*e).intersects(need))
        .collect();
    let t_var = usable.len();
    let mut prog = LinearProgram::maximize(t_var + 1);
    prog.set_objective(t_var, Rational::one());
    for v in need.iter() {
        let coeffs: Vec<(usize, Rational)> = usable
            .iter()
            .enumerate()
            .filter(|(_, &e)| h.edge(e).contains(v))
            .map(|(col, _)| (col, Rational::one()))
            .collect();
        if coeffs.is_empty() {
            return None;
        }
        prog.add_constraint(coeffs, Cmp::Ge, Rational::one());
    }
    // weight(γ) <= slack, and γ : E → [0, 1].
    prog.add_constraint(
        (0..usable.len())
            .map(|col| (col, Rational::one()))
            .collect(),
        Cmp::Le,
        slack.clone(),
    );
    for col in 0..usable.len() {
        prog.add_constraint(vec![(col, Rational::one())], Cmp::Le, Rational::one());
    }
    // Outside vertices must stay strictly below full coverage.
    let outside: Vec<usize> = (0..h.num_vertices())
        .filter(|&v| !basis.contains(v))
        .collect();
    for &v in &outside {
        let mut coeffs: Vec<(usize, Rational)> = usable
            .iter()
            .enumerate()
            .filter(|(_, &e)| h.edge(e).contains(v))
            .map(|(col, _)| (col, Rational::one()))
            .collect();
        if coeffs.is_empty() {
            continue;
        }
        coeffs.push((t_var, Rational::one()));
        prog.add_constraint(coeffs, Cmp::Le, Rational::one());
    }
    prog.add_constraint(vec![(t_var, Rational::one())], Cmp::Le, Rational::one());
    match prog.solve() {
        LpResult::Optimal { value, solution } if value.is_positive() => Some(
            solution
                .into_iter()
                .take(usable.len())
                .enumerate()
                .filter(|(_, w)| !w.is_zero())
                .map(|(col, w)| (usable[col], w))
                .collect(),
        ),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use decomp::validate;
    use hypergraph::generators;

    fn params(k: Rational, eps: Rational, c: usize) -> FracDecompParams {
        FracDecompParams { k, eps, c }
    }

    #[test]
    fn acyclic_accepted() {
        let h = generators::path(5);
        let d = frac_decomp(&h, &params(Rational::one(), rat(1, 2), 0)).expect("paths: fhw 1");
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(d.width() <= rat(3, 2));
    }

    #[test]
    fn triangle_with_fractional_shadow() {
        // k = 1, ε = 1/2: the width budget 3/2 forces the genuinely
        // fractional cover; c = 3 lets W_s hold the triangle.
        let h = generators::cycle(3);
        let d = frac_decomp(&h, &params(Rational::one(), rat(1, 2), 3)).expect("fhw(C3) = 3/2");
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(d.width() <= rat(3, 2));
        assert!(validate::validate_weak_special(&h, &d).is_ok());
        assert!(validate::has_c_bounded_fractional_part(&h, &d, 3));
    }

    #[test]
    fn triangle_rejected_below_three_halves() {
        let h = generators::cycle(3);
        assert!(frac_decomp(&h, &params(Rational::one(), rat(1, 3), 3)).is_none());
    }

    #[test]
    fn cycles_accepted_at_2() {
        let h = generators::cycle(5);
        let d = frac_decomp(&h, &params(rat(3, 2), rat(1, 2), 2)).expect("fhw(C5) = 2");
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(d.width() <= rat(2, 1));
    }

    #[test]
    fn example_5_1_exploits_fractional_part() {
        // rho*(H_n) = 2 - 1/n; a single node with S = {big edge} and W_s
        // = {v0} covered fractionally realizes width 2 - 1/n <= k + ε
        // with k = 1, ε = 1 - 1/n... use ε = 1 for simplicity.
        let h = generators::example_5_1(4);
        let d =
            frac_decomp(&h, &params(Rational::one(), Rational::one(), 1)).expect("fhw <= 2 - 1/4");
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(d.width() <= rat(2, 1));
    }

    #[test]
    fn zero_c_reduces_to_integral_covers() {
        // With c = 0 the algorithm can only build GHD-like covers, so the
        // triangle needs budget 2.
        let h = generators::cycle(3);
        assert!(frac_decomp(&h, &params(Rational::one(), rat(1, 2), 0)).is_none());
        assert!(frac_decomp(&h, &params(rat(3, 2), rat(1, 2), 0)).is_some());
    }

    #[test]
    fn frac_search_brackets_the_optimum() {
        let h = generators::cycle(3);
        let (w, d) = fhw_frac_search(&h, 3, 3).expect("triangle decomposes");
        assert!(w >= rat(3, 2));
        assert!(w <= rat(7, 4)); // 3/2 budgeted with eps = 1/4
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
    }

    #[test]
    fn theorem_6_16_soundness_on_corpus() {
        // Whatever frac-decomp accepts must validate at width k + ε.
        for seed in 0..3u64 {
            let h = generators::random_bounded_degree(8, 5, 2, 3, seed);
            let p = params(rat(2, 1), rat(1, 2), 2);
            if let Some(d) = frac_decomp(&h, &p) {
                assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "seed {seed}");
                assert!(d.width() <= rat(5, 2), "seed {seed}");
            }
        }
    }
}
