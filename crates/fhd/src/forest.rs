//! Algorithm 2: intersection forests `IF(ξ)` (Definitions 5.13/5.14).
//!
//! A sequence `ξ = (ξ_1, ..., ξ_max)` of groups of at most `k·d` edges
//! abstracts the supports along a critical path. The forest systematically
//! rewrites the intersection of unions of classes into a union of
//! intersections; its fringe `F(ξ)` over-approximates the sets
//! `⋂_i B(γ_{u_i})` (Lemma 5.16), which is what the subedge function
//! `h_{d,k}` needs (Lemma 5.17).

use crate::classes::classes;
use hypergraph::{Hypergraph, VertexSet};

/// Status marks of forest nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mark {
    /// Alive: the branch can still contribute to the fringe.
    Ok,
    /// Dead end: the running intersection hit the empty set at some level.
    Fail,
}

/// A node of the intersection forest.
#[derive(Clone, Debug)]
pub struct ForestNode {
    /// `set(v)`: the running intersection (a class intersection).
    pub set: VertexSet,
    /// `levels(v)`: the levels of ξ this node is current for.
    pub levels: Vec<usize>,
    /// `edges(v) = {e ∈ E(H) | set(v) ⊆ e}` (the maximal type).
    pub edges: Vec<usize>,
    /// `mark(v)`.
    pub mark: Mark,
    /// Children created by Expand steps.
    pub children: Vec<ForestNode>,
}

impl ForestNode {
    fn new(h: &Hypergraph, set: VertexSet, level: usize) -> ForestNode {
        let edges = (0..h.num_edges())
            .filter(|&e| set.is_subset(h.edge(e)))
            .collect();
        ForestNode {
            set,
            levels: vec![level],
            edges,
            mark: Mark::Ok,
            children: Vec::new(),
        }
    }

    /// Depth of the subtree (a single node has depth 0).
    pub fn depth(&self) -> usize {
        self.children
            .iter()
            .map(|c| 1 + c.depth())
            .max()
            .unwrap_or(0)
    }

    /// Node count of the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ForestNode::size).sum::<usize>()
    }
}

/// The intersection forest `IF(ξ)` of Algorithm 2.
#[derive(Clone, Debug)]
pub struct IntersectionForest {
    /// One tree per class of `C(ξ_1)`.
    pub trees: Vec<ForestNode>,
    /// Number of levels processed (`max(ξ)`).
    pub levels: usize,
}

/// Runs Algorithm 2 on the sequence `xi` of edge groups.
pub fn intersection_forest(h: &Hypergraph, xi: &[Vec<usize>]) -> IntersectionForest {
    assert!(!xi.is_empty(), "ξ must have at least one group");
    let mut trees: Vec<ForestNode> = classes(h, &xi[0])
        .into_iter()
        .map(|c| ForestNode::new(h, c, 1))
        .collect();
    for (idx, group) in xi.iter().enumerate().skip(1) {
        let level = idx + 1;
        let group_classes = classes(h, group);
        for tree in trees.iter_mut() {
            expand(h, tree, level, &group_classes);
        }
    }
    IntersectionForest {
        trees,
        levels: xi.len(),
    }
}

fn expand(h: &Hypergraph, node: &mut ForestNode, level: usize, group_classes: &[VertexSet]) {
    let is_current_leaf = node.children.is_empty()
        && node.mark == Mark::Ok
        && node.levels.last() == Some(&(level - 1));
    if !is_current_leaf {
        for c in node.children.iter_mut() {
            expand(h, c, level, group_classes);
        }
        return;
    }
    let mut all_empty = true;
    let mut passes = false;
    let mut expansions: Vec<VertexSet> = Vec::new();
    for c in group_classes {
        let isec = node.set.intersection(c);
        if isec.is_empty() {
            continue;
        }
        all_empty = false;
        if isec == node.set {
            passes = true; // Passing: same value continues to this level
        } else {
            expansions.push(isec); // Expand: strictly smaller
        }
    }
    if all_empty {
        node.mark = Mark::Fail; // Dead End
        return;
    }
    if passes {
        node.levels.push(level);
    }
    for isec in expansions {
        node.children.push(ForestNode::new(h, isec, level));
    }
}

impl IntersectionForest {
    /// `iflevel_i(ξ)` / `F_i(ξ)`: the `set()` values of ok-nodes current at
    /// level `i` (Definition 5.14).
    pub fn level_sets(&self, i: usize) -> Vec<VertexSet> {
        let mut out = Vec::new();
        for t in &self.trees {
            collect_level(t, i, &mut out);
        }
        out.sort();
        out.dedup();
        out
    }

    /// The fringe `F(ξ) = F_max(ξ)`.
    pub fn fringe(&self) -> Vec<VertexSet> {
        self.level_sets(self.levels)
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        self.trees.iter().map(ForestNode::size).sum()
    }

    /// Maximum tree depth.
    pub fn depth(&self) -> usize {
        self.trees.iter().map(ForestNode::depth).max().unwrap_or(0)
    }
}

fn collect_level(node: &ForestNode, i: usize, out: &mut Vec<VertexSet>) {
    if node.mark == Mark::Ok && node.levels.contains(&i) {
        out.push(node.set.clone());
    }
    for c in &node.children {
        collect_level(c, i, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::Rational;
    use hypergraph::{generators, properties};

    #[test]
    fn fact_1_children_gain_edges() {
        let h = generators::example_4_3();
        let xi = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        let forest = intersection_forest(&h, &xi);
        fn walk(n: &ForestNode) {
            for c in &n.children {
                assert!(c.edges.len() > n.edges.len(), "Fact 1 violated");
                assert!(n.edges.iter().all(|e| c.edges.contains(e)));
                walk(c);
            }
        }
        for t in &forest.trees {
            walk(t);
        }
    }

    #[test]
    fn fact_2_depth_bounded_by_degree() {
        for seed in 0..4u64 {
            let h = generators::random_bounded_degree(10, 8, 3, 3, seed);
            let d = properties::degree(&h);
            let xi: Vec<Vec<usize>> = (0..h.num_edges().min(4))
                .map(|i| vec![i, (i + 1) % h.num_edges()])
                .collect();
            let forest = intersection_forest(&h, &xi);
            assert!(
                forest.depth() <= d.saturating_sub(1),
                "Fact 2: depth {} > d-1 {}",
                forest.depth(),
                d - 1
            );
        }
    }

    #[test]
    fn fact_3_size_bound() {
        // |IF(ξ)| <= a^{d+1} with a = 2^{k·d}; loose but checkable.
        let h = generators::random_bounded_degree(8, 6, 2, 3, 1);
        let d = properties::degree(&h);
        let k = 2usize;
        let xi: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3]];
        let forest = intersection_forest(&h, &xi);
        let a = 2usize.pow((k * d) as u32);
        assert!(forest.size() <= a.pow(d as u32 + 1));
        assert!(forest.fringe().len() <= a.pow(d as u32));
    }

    #[test]
    fn lemma_5_16_fringe_covers_intersections_of_b_sets() {
        // For an actual pair of supports with *integral* weights, the
        // intersection of the covered sets must be a union of fringe sets.
        let h = generators::example_4_3();
        let xi = vec![vec![1, 5], vec![2, 6]]; // supports of two λ's
        let forest = intersection_forest(&h, &xi);
        let b1 = h.union_of_edges(xi[0].iter().copied());
        let b2 = h.union_of_edges(xi[1].iter().copied());
        let target = b1.intersection(&b2);
        // Greedily assemble target from fringe members.
        let mut acc = hypergraph::VertexSet::new();
        for f in forest.fringe() {
            if f.is_subset(&target) {
                acc.union_with(&f);
            }
        }
        assert_eq!(acc, target, "⋂ B(γ_ui) ∈ ⋓F(ξ)");
    }

    #[test]
    fn lemma_5_16_with_fractional_weights() {
        // Fractional supports: B(γ) for γ = 1/2 on each triangle edge.
        let h = generators::cycle(3);
        let xi = vec![vec![0, 1, 2], vec![0, 1]];
        let forest = intersection_forest(&h, &xi);
        let weights: Vec<(usize, Rational)> =
            (0..3).map(|e| (e, Rational::from_frac(1, 2))).collect();
        let b1 = crate::classes::covered_via_classes(&h, &weights);
        let b2 = h.union_of_edges([0usize, 1]);
        let target = b1.intersection(&b2);
        let mut acc = hypergraph::VertexSet::new();
        for f in forest.fringe() {
            if f.is_subset(&target) {
                acc.union_with(&f);
            }
        }
        assert_eq!(acc, target);
    }

    #[test]
    fn dead_ends_are_marked() {
        // Two disjoint groups force Fail marks.
        let h = Hypergraph::from_edges(4, vec![vec![0, 1], vec![2, 3]]);
        let forest = intersection_forest(&h, &[vec![0], vec![1]]);
        fn any_fail(n: &ForestNode) -> bool {
            n.mark == Mark::Fail || n.children.iter().any(any_fail)
        }
        assert!(forest.trees.iter().any(any_fail));
        assert!(forest.fringe().is_empty());
    }

    use hypergraph::Hypergraph;
}
