//! Theorem 6.1: for BIP hypergraph classes, an FHD of width `<= k + ε` is
//! computable in polynomial time whenever `fhw(H) <= k`.
//!
//! Machinery:
//! * Lemma 6.4 — every FHD of width `<= k` transforms into one of width
//!   `<= k + ε` with `c`-bounded fractional part, `c = 2ik² + 4k³i/ε`,
//!   by rounding the "big heavy" edges up to weight 1
//!   ([`bound_fractional_part`]).
//! * Lemma 6.5 — the subedge function `f_{(c,i,k)}(H)` = all subedges of
//!   size `<= ki + c` repairs weak-special-condition violations
//!   ([`f_cik_subedges`]).
//! * The pipeline [`approx_fhd_bip`] = augment + Algorithm 3.

#![allow(clippy::needless_range_loop)]

use crate::frac_decomp::{frac_decomp, FracDecompParams};
use arith::Rational;
use decomp::{Decomposition, Node};
use ghd::subedges::SubedgeSet;
use hypergraph::{properties, Hypergraph, VertexSet};
use std::collections::HashSet;

/// Lemma 6.4's fractional-part bound `c = 2ik² + 4k³i/ε`.
pub fn lemma_6_4_c(k: &Rational, i: usize, eps: &Rational) -> Rational {
    let i = Rational::from(i);
    let two = Rational::from(2usize);
    let four = Rational::from(4usize);
    &two * &i * k * k + &(&four * &(k * k * k) * &i) / eps
}

/// Lemma 6.4's big-heavy threshold `d = 2k²i/ε`.
pub fn lemma_6_4_threshold(k: &Rational, i: usize, eps: &Rational) -> Rational {
    let i = Rational::from(i);
    (Rational::from(2usize) * k * k * &i) / eps.clone()
}

/// The Lemma 6.4 transformation: per node, edges of weight `>= 1/2`
/// ("heavy") whose intersection with `B(γ_u)` has at least `2k²i/ε`
/// vertices ("big") are rounded up to weight 1. The width grows by at most
/// `ε` and the fractional part becomes `c`-bounded with
/// `c = 2ik² + 4k³i/ε` (for `i`-BIP inputs of width `<= k`).
pub fn bound_fractional_part(
    h: &Hypergraph,
    d: &Decomposition,
    k: &Rational,
    eps: &Rational,
) -> Decomposition {
    let i = properties::intersection_width(h);
    let threshold = lemma_6_4_threshold(k, i, eps);
    let mut out = d.clone();
    for u in 0..out.len() {
        let covered = out.node(u).covered_set(h);
        let node = out.node_mut(u);
        for (e, w) in node.weights.iter_mut() {
            if *w >= Rational::from_frac(1, 2) && *w < Rational::one() {
                let big = Rational::from(h.edge(*e).intersection(&covered).len()) >= threshold;
                if big {
                    *w = Rational::one();
                }
            }
        }
    }
    out
}

/// Lemma 6.5's subedge function `f_{(c,i,k)}(H)`: all subedges of size
/// `<= size_bound` (paper: `ki + c`) of every edge, capped at `cap`.
pub fn f_cik_subedges(h: &Hypergraph, size_bound: usize, cap: usize) -> SubedgeSet {
    let existing: HashSet<VertexSet> = h.edges().iter().cloned().collect();
    let mut emitted: HashSet<VertexSet> = HashSet::new();
    let mut subedges = Vec::new();
    let mut originators = Vec::new();
    let mut truncated = false;
    'outer: for (ei, e) in h.edges().iter().enumerate() {
        let members = e.to_vec();
        // Enumerate subsets of size 1..=size_bound via bounded DFS.
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(0, Vec::new())];
        while let Some((start, cur)) = stack.pop() {
            if !cur.is_empty() {
                let set = VertexSet::from_iter(cur.iter().copied());
                if !existing.contains(&set)
                    && set.len() < members.len()
                    && emitted.insert(set.clone())
                {
                    subedges.push(set);
                    originators.push(ei);
                    if subedges.len() >= cap {
                        truncated = true;
                        break 'outer;
                    }
                }
            }
            if cur.len() < size_bound {
                for j in start..members.len() {
                    let mut next = cur.clone();
                    next.push(members[j]);
                    stack.push((j + 1, next));
                }
            }
        }
    }
    SubedgeSet {
        subedges,
        originators,
        truncated,
    }
}

/// The Theorem 6.1 pipeline: if `fhw(H) <= k`, produces an FHD of `H` of
/// width `<= k + ε` in time polynomial for fixed `(k, ε, i)`.
///
/// `c_override` replaces the (enormous) Lemma 6.4 constant by a practical
/// value — sound always; complete relative to the chosen `c`.
pub fn approx_fhd_bip(
    h: &Hypergraph,
    k: &Rational,
    eps: &Rational,
    c_override: Option<usize>,
) -> Option<Decomposition> {
    let i = properties::intersection_width(h);
    let c = match c_override {
        Some(c) => c,
        None => lemma_6_4_c(k, i, eps)
            .ceil()
            .to_i64()
            .unwrap_or(i64::MAX)
            .max(0) as usize,
    };
    let size_bound = (k * &Rational::from(i))
        .ceil()
        .to_i64()
        .unwrap_or(i64::MAX)
        .max(0) as usize
        + c;
    // Subedge augmentation (Lemma 6.5), then Algorithm 3 on H'.
    let f = f_cik_subedges(h, size_bound, 100_000);
    let aug = ghd::check::augment(h, f);
    let params = FracDecompParams {
        k: k.clone(),
        eps: eps.clone(),
        c,
    };
    let d = frac_decomp(&aug.hypergraph, &params)?;
    // Project weights on subedges back to originators.
    Some(project(h, &aug, &d))
}

fn project(h: &Hypergraph, aug: &ghd::check::Augmented, d: &Decomposition) -> Decomposition {
    fn convert(
        aug: &ghd::check::Augmented,
        d: &Decomposition,
        u: usize,
        out: &mut Decomposition,
        parent: Option<usize>,
    ) {
        let mut weights: Vec<(usize, Rational)> = Vec::new();
        for (e, w) in &d.node(u).weights {
            let orig = aug.originator[*e];
            match weights.iter_mut().find(|(o, _)| *o == orig) {
                Some((_, w0)) => *w0 = (&*w0 + w).min(Rational::one()),
                None => weights.push((orig, w.clone())),
            }
        }
        let node = Node {
            bag: d.node(u).bag.clone(),
            weights,
        };
        let id = match parent {
            None => {
                *out.node_mut(0) = node;
                0
            }
            Some(p) => out.add_child(p, node),
        };
        for &c in d.children(u) {
            convert(aug, d, c, out, Some(id));
        }
    }
    let _ = h;
    let mut out = Decomposition::new(Node::integral(VertexSet::new(), []));
    convert(aug, d, d.root(), &mut out, None);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use decomp::validate;
    use hypergraph::generators;

    #[test]
    fn lemma_6_4_constants() {
        // k = 2, i = 1, ε = 1: c = 2*1*4 + 4*8*1/1 = 40; threshold 8.
        assert_eq!(lemma_6_4_c(&rat(2, 1), 1, &rat(1, 1)), rat(40, 1));
        assert_eq!(lemma_6_4_threshold(&rat(2, 1), 1, &rat(1, 1)), rat(8, 1));
    }

    #[test]
    fn bounding_the_fractional_part_respects_lemma_6_4() {
        // Start from the exact FHD of Example 5.1 (big fractional support)
        // and round; width grows by at most ε, fractional part shrinks.
        let h = generators::example_5_1(6);
        let (w, d) = crate::exact::fhw_exact(&h, None).unwrap();
        let k = w.clone();
        let eps = rat(1, 2);
        let out = bound_fractional_part(&h, &d, &k, &eps);
        assert_eq!(validate::validate_fhd(&h, &out), Ok(()));
        assert!(out.width() <= &k + &eps, "width {} > k+ε", out.width());
        let i = hypergraph::properties::intersection_width(&h);
        let c = lemma_6_4_c(&k, i, &eps).ceil().to_i64().unwrap() as usize;
        assert!(validate::has_c_bounded_fractional_part(&h, &out, c));
    }

    #[test]
    fn f_cik_enumerates_small_subedges() {
        let h = generators::cycle(4);
        let f = f_cik_subedges(&h, 1, 1000);
        // Each 2-edge yields its two singletons; 8 total, deduped to 4.
        assert!(!f.truncated);
        assert_eq!(f.subedges.len(), 4);
        for s in &f.subedges {
            assert_eq!(s.len(), 1);
        }
    }

    #[test]
    fn approx_pipeline_on_triangle() {
        // fhw(C3) = 3/2; the pipeline with k = 3/2 must find width <= 3/2+ε.
        let h = generators::cycle(3);
        let d = approx_fhd_bip(&h, &rat(3, 2), &rat(1, 2), Some(3)).expect("fhw = 3/2 <= k");
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(d.width() <= rat(2, 1));
    }

    #[test]
    fn approx_pipeline_matches_exact_within_eps() {
        for (hh, name) in [
            (generators::cycle(4), "C4"),
            (generators::example_5_1(3), "Ex5.1(3)"),
        ] {
            let (fhw, _) = crate::exact::fhw_exact(&hh, None).unwrap();
            let eps = rat(1, 2);
            let d = approx_fhd_bip(&hh, &fhw, &eps, Some(2))
                .unwrap_or_else(|| panic!("{name}: pipeline must accept k = fhw"));
            assert_eq!(validate::validate_fhd(&hh, &d), Ok(()), "{name}");
            assert!(d.width() <= &fhw + &eps, "{name}: {} > fhw+ε", d.width());
        }
    }
}
