//! The subedge function `h_{d,k}` of Lemma 5.17:
//! `h_{d,k}(H) = E(H) ∩· (⋓_{2^{d²k}} ⋒_d E(H))`.
//!
//! The paper's union arity `2^{d²k}` is astronomically large even for
//! `d = k = 2`, so the implementation exposes it as a parameter (soundness
//! is unconditional — every generated set is a subedge; completeness of the
//! Theorem 5.22 equivalence holds whenever the arity suffices, and
//! truncation is reported).

use ghd::subedges::SubedgeSet;
use hypergraph::{Hypergraph, VertexSet};
use std::collections::HashSet;

/// Parameters bounding the `h_{d,k}` enumeration.
#[derive(Clone, Copy, Debug)]
pub struct HdkParams {
    /// Maximum number of `⋒_d`-sets united (`⋓` arity). The paper's value
    /// is `2^{d²·k}`; the default keeps enumeration practical.
    pub union_arity: usize,
    /// Hard cap on generated subedges.
    pub max_subedges: usize,
}

impl Default for HdkParams {
    fn default() -> Self {
        HdkParams {
            union_arity: 3,
            max_subedges: 200_000,
        }
    }
}

/// `⋒_d E(H)`: all non-empty intersections of at most `d` distinct edges.
pub fn d_intersections(h: &Hypergraph, d: usize) -> Vec<VertexSet> {
    let mut seen: HashSet<VertexSet> = HashSet::new();
    let mut out: Vec<VertexSet> = Vec::new();
    // BFS over intersection depth with dedup; depth 1 = the edges.
    let mut frontier: Vec<VertexSet> = Vec::new();
    for e in h.edges() {
        if seen.insert(e.clone()) {
            out.push(e.clone());
            frontier.push(e.clone());
        }
    }
    for _ in 1..d {
        let mut next = Vec::new();
        for x in &frontier {
            for e in h.edges() {
                let isec = x.intersection(e);
                if !isec.is_empty() && seen.insert(isec.clone()) {
                    out.push(isec.clone());
                    next.push(isec);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out
}

/// Computes (a parameterized version of) `h_{d,k}(H)`.
pub fn hdk_subedges(h: &Hypergraph, d: usize, params: HdkParams) -> SubedgeSet {
    let base = d_intersections(h, d);
    let existing: HashSet<VertexSet> = h.edges().iter().cloned().collect();
    let mut emitted: HashSet<VertexSet> = HashSet::new();
    let mut subedges = Vec::new();
    let mut originators = Vec::new();
    let mut truncated = false;

    // Unions of <= union_arity base sets, lazily intersected with each edge.
    // Level-wise closure over the union side with dedup.
    let mut union_seen: HashSet<VertexSet> = HashSet::new();
    let mut frontier: Vec<VertexSet> = vec![VertexSet::new()];
    'outer: for _ in 0..params.union_arity {
        let mut next = Vec::new();
        for u in &frontier {
            for b in &base {
                let mut u2 = u.clone();
                u2.union_with(b);
                if !union_seen.insert(u2.clone()) {
                    continue;
                }
                // Pointwise intersection with every edge.
                for (e, edge) in h.edges().iter().enumerate() {
                    let s = edge.intersection(&u2);
                    if s.is_empty() || existing.contains(&s) || !emitted.insert(s.clone()) {
                        continue;
                    }
                    subedges.push(s);
                    originators.push(e);
                    if subedges.len() >= params.max_subedges {
                        truncated = true;
                        break 'outer;
                    }
                }
                next.push(u2);
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    SubedgeSet {
        subedges,
        originators,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    #[test]
    fn d_intersections_of_triangle() {
        let h = generators::cycle(3);
        let one = d_intersections(&h, 1);
        assert_eq!(one.len(), 3); // just the edges
        let two = d_intersections(&h, 2);
        assert_eq!(two.len(), 6); // edges + three shared vertices
        let three = d_intersections(&h, 3);
        assert_eq!(three.len(), 6); // triple intersection is empty
    }

    #[test]
    fn subedges_are_proper_and_tracked() {
        let h = generators::example_5_1(4);
        let f = hdk_subedges(&h, 2, HdkParams::default());
        assert!(!f.truncated);
        for (s, &o) in f.subedges.iter().zip(&f.originators) {
            assert!(s.is_subset(h.edge(o)));
            assert!(!s.is_empty());
            assert!(h.edges().iter().all(|e| e != s));
        }
        // Dedup: no repeated subedges.
        let set: std::collections::HashSet<_> = f.subedges.iter().cloned().collect();
        assert_eq!(set.len(), f.subedges.len());
    }

    #[test]
    fn union_arity_grows_the_family_monotonically() {
        let h = generators::example_4_3();
        let small = hdk_subedges(
            &h,
            2,
            HdkParams {
                union_arity: 1,
                max_subedges: 100_000,
            },
        );
        let big = hdk_subedges(
            &h,
            2,
            HdkParams {
                union_arity: 3,
                max_subedges: 100_000,
            },
        );
        let small_set: std::collections::HashSet<_> = small.subedges.into_iter().collect();
        let big_set: std::collections::HashSet<_> = big.subedges.into_iter().collect();
        assert!(small_set.is_subset(&big_set));
        assert!(big_set.len() >= small_set.len());
    }

    #[test]
    fn truncation_reported() {
        let h = generators::clique(6);
        let f = hdk_subedges(
            &h,
            3,
            HdkParams {
                union_arity: 4,
                max_subedges: 5,
            },
        );
        assert!(f.truncated);
        assert_eq!(f.subedges.len(), 5);
    }
}
