//! Fractional hypertree decompositions: the paper's Sections 5 and 6.
//!
//! * [`exact`] — exact `fhw` baseline over exact rationals.
//! * [`classes`] / [`forest`] — types & classes (Definitions 5.7–5.10) and
//!   intersection forests (Algorithm 2).
//! * [`subedges`] — the `h_{d,k}` subedge function (Lemma 5.17).
//! * [`bdp`] — `Check(FHD, k)` for bounded-degree hypergraphs
//!   (Theorems 5.2 / 5.22).
//! * [`mod@frac_decomp`] — Algorithm 3, `(k, ε, c)-frac-decomp`
//!   (Theorem 6.16).
//! * [`approx_bip`] — the Theorem 6.1 `k + ε` approximation under the BIP
//!   (Lemmas 6.4 / 6.5).
//! * [`ptaas`] — Algorithm 4, the PTAAS for K-Bounded-FHW-Optimization
//!   (Theorem 6.20).
//! * [`loglog`] — the `O(k·log k)` GHD conversion under bounded
//!   VC-dimension / BMIP (Theorem 6.23, Lemma 6.24, Corollary 6.25).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx_bip;
pub mod backends;
pub mod bdp;
pub mod classes;
pub mod exact;
pub mod forest;
pub mod frac_decomp;
pub mod loglog;
pub mod ptaas;
pub mod subedges;

pub use approx_bip::{approx_fhd_bip, bound_fractional_part, lemma_6_4_c};
pub use bdp::{
    check_fhd_bdp, check_fhd_bdp_legacy, check_fhd_bdp_with_stats, fhw_bdp_integer_search,
    FhdAnswer,
};
pub use exact::{
    fhw_exact, fhw_exact_elimination_with_stats, fhw_exact_subset_oracle, fhw_exact_with_stats,
    fhw_upper_bound, fhw_upper_bound_with_stats,
};
pub use forest::{intersection_forest, IntersectionForest};
pub use frac_decomp::{fhw_frac_search, frac_decomp, frac_decomp_with_stats, FracDecompParams};
pub use loglog::{approx_ghw_via_fhw, cigap_bound, ghd_from_fhd, CoverMode};
pub use ptaas::{exact_oracle, fhw_approximation, predicted_iterations, PtaasResult};
pub use subedges::{d_intersections, hdk_subedges, HdkParams};
