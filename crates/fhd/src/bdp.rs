//! `Check(FHD, k)` for bounded-degree hypergraphs (Theorem 5.2) through the
//! characterization of Theorem 5.22:
//!
//! > `fhw(H) <= k` iff `H' = H ∪ h_{d,k}(H)` admits a *strict* HD of width
//! > `<= k·d` in normal form whose every node `u` satisfies
//! > `rho*(H_{λ_u}) <= k`.
//!
//! The search is the `det-k-decomp` recursion over `H'` with two extra
//! checks per guessed separator `S` (the modified algorithm in the proof of
//! Theorem 5.2): strictness `⋃S ⊆ B(λ_r) ∪ treecomp(u)` — in recursion
//! terms `V(S) ⊆ C_r ∪ V(R)` — and the LP bound `rho*(⋃S via S) <= k`.
//! A found strict HD converts into an FHD of `H` of width `<= k` by
//! re-covering each bag fractionally and pushing subedge weights to their
//! originators.
//!
//! Since the strictness condition couples a search state to the parent
//! separator's *full* vertex span (not just the connector), the search runs
//! on the shared [`solver`] engine as the fifth strategy, with the memo key
//! extended by the strictness `allowed` trace through
//! [`WidthSolver::state_key`]. The pre-engine recursion survives as
//! [`check_fhd_bdp_legacy`], the independent oracle the agreement tests
//! certify the strategy against.

use crate::subedges::{hdk_subedges, HdkParams};
use arith::Rational;
use cover::ShardedCache;
use decomp::{Decomposition, Node};
use ghd::check::{augment, Augmented};
use hypergraph::{components, properties, Hypergraph, VertexSet};
use solver::{
    Admission, CandidateStream, EngineOptions, Guess, SearchContext, SearchState, SearchStats,
    WidthSolver,
};
use std::collections::HashMap;
use std::sync::Mutex;

/// Outcome of the bounded-degree FHD check.
#[derive(Clone, Debug)]
pub enum FhdAnswer {
    /// An FHD of `H` of width `<= k`.
    Yes(Box<Decomposition>),
    /// Certified: no FHD of width `<= k` exists (complete enumeration).
    No,
    /// The subedge enumeration was truncated; a failed search is not a
    /// certified "no".
    Unknown,
}

impl cover::MemSize for FhdAnswer {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + match self {
                FhdAnswer::Yes(d) => cover::MemSize::approx_bytes(d.as_ref()),
                FhdAnswer::No | FhdAnswer::Unknown => 0,
            }
    }
}

impl FhdAnswer {
    /// The witness, if any.
    pub fn decomposition(&self) -> Option<&Decomposition> {
        match self {
            FhdAnswer::Yes(d) => Some(d),
            _ => None,
        }
    }

    /// True iff a witness was found.
    pub fn is_yes(&self) -> bool {
        matches!(self, FhdAnswer::Yes(_))
    }
}

/// `Check(FHD, k)` under the bounded degree property (Theorem 5.2).
///
/// `k` may be rational (e.g. `3/2`); the support bound is `⌊k·d⌋` per
/// Lemma 5.6. `params` bounds the `h_{d,k}` enumeration — with the paper's
/// (galactic) defaults the algorithm is complete; with practical caps the
/// `No` answer degrades to `Unknown` when truncation occurred.
pub fn check_fhd_bdp(h: &Hypergraph, k: &Rational, params: HdkParams) -> FhdAnswer {
    check_fhd_bdp_with_stats(h, k, params, EngineOptions::default()).0
}

/// As [`check_fhd_bdp`], also reporting engine and separator-LP cache
/// counters. The strict-HD search is a decision strategy, so it runs
/// sequentially unless [`EngineOptions::speculate`] lets it race separator
/// guesses across the worker pool.
pub fn check_fhd_bdp_with_stats(
    h: &Hypergraph,
    k: &Rational,
    params: HdkParams,
    opts: EngineOptions,
) -> (FhdAnswer, SearchStats) {
    if h.has_isolated_vertices() || !k.is_positive() {
        return (FhdAnswer::No, SearchStats::default());
    }
    let warm = solver::pool_is_warm();
    let key = format!(
        "k={:?};arity={};max_sub={};prep={};rp={};backend=auto",
        k, params.union_arity, params.max_subedges, opts.prep, opts.reuse_prices
    );
    let reuse = opts.reuse_results && !opts.speculate;
    let (answer, mut stats) = prep::cached_query(h, "result-fhd-bdp", key, reuse, || {
        // Decision profile (duplicate edges + twin vertices): `fhw` and
        // the strictness trace are preserved exactly, and the lifted
        // witness stays a valid FHD of `h` at the same width. The
        // `No`/`Unknown` distinction travels around the generic wrapper
        // in `verdict`.
        let mut verdict = FhdAnswer::No;
        let (result, stats) = prep::run_decision(h, opts.prep, |block| {
            let (answer, s) = check_fhd_bdp_piece(block, k, params, opts);
            match answer {
                FhdAnswer::Yes(d) => (Some(((), *d)), s),
                other => {
                    verdict = other;
                    (None, s)
                }
            }
        });
        let answer = match result {
            Some((_, d)) => FhdAnswer::Yes(Box::new(d)),
            None => verdict,
        };
        (answer, stats)
    });
    stats.pool_reuse = usize::from(warm);
    (answer, stats)
}

/// Runs the Theorem 5.2 search proper on an (already preprocessed)
/// instance.
fn check_fhd_bdp_piece(
    h: &Hypergraph,
    k: &Rational,
    params: HdkParams,
    opts: EngineOptions,
) -> (FhdAnswer, SearchStats) {
    let Some((aug, bounds)) = prepare(h, k, params) else {
        return (FhdAnswer::No, SearchStats::default());
    };
    let aug = std::sync::Arc::new(aug);
    let hp = &aug.hypergraph;
    // The separator LP prices (`rho*(⋃S via S)`) are k-independent, so a
    // registry-backed session keyed on the *augmented* instance lets the
    // integer/PTAAS iteration loops reuse them across their repeated
    // checks.
    let session = prep::SessionCache::open(hp, "strict-sep-lp", opts.reuse_prices);
    let truncated = aug.truncated;
    let strategy = std::sync::Arc::new(StrictHd {
        aug: std::sync::Arc::clone(&aug),
        k: k.clone(),
        support_bound: bounds.support,
        max_union: bounds.union,
        sep_cache: std::sync::Arc::clone(&session.cache),
        scope_cache: Mutex::new(None),
    });
    let cx = SearchContext::with_options(opts);
    let result = cx.run(hp, &strategy);
    let mut stats = cx.stats();
    (stats.price_hits, stats.price_misses, stats.price_warm_hits) = session.deltas();
    let answer = match result {
        Some((_, d)) => FhdAnswer::Yes(Box::new(d)),
        None if truncated => FhdAnswer::Unknown,
        None => FhdAnswer::No,
    };
    (answer, stats)
}

/// `fhw` upper search for BDP instances: smallest integer `k <= max_k`
/// accepted by [`check_fhd_bdp`].
pub fn fhw_bdp_integer_search(
    h: &Hypergraph,
    max_k: usize,
    params: HdkParams,
) -> Option<(usize, Decomposition)> {
    for k in 1..=max_k {
        if let FhdAnswer::Yes(d) = check_fhd_bdp(h, &Rational::from(k), params) {
            return Some((k, *d));
        }
    }
    None
}

/// The Lemma 5.6 / branch-prune bounds shared by both implementations.
struct Bounds {
    /// `⌊k·d⌋`: maximum separator support.
    support: usize,
    /// `⌊k·rank⌋`: separators with larger unions cannot satisfy the LP
    /// (`rho*(H_λ) >= |⋃S| / rank`).
    union: usize,
}

/// Builds the augmented hypergraph and the search bounds; `None` when the
/// check is trivially "no".
fn prepare(h: &Hypergraph, k: &Rational, params: HdkParams) -> Option<(Augmented, Bounds)> {
    if h.has_isolated_vertices() || !k.is_positive() {
        return None;
    }
    let d = properties::degree(h);
    let aug = augment(h, hdk_subedges(h, d, params));
    let support_bound = (k * &Rational::from(d)).floor();
    let support_bound = support_bound.to_i64().unwrap_or(i64::MAX).max(0) as usize;
    if support_bound == 0 {
        return None;
    }
    let rank = properties::rank(&aug.hypergraph);
    let max_union = (k * &Rational::from(rank)).floor();
    let max_union = max_union.to_i64().unwrap_or(i64::MAX).max(0) as usize;
    Some((
        aug,
        Bounds {
            support: support_bound,
            union: max_union,
        },
    ))
}

/// A priced separator cover: `rho*(⋃S via S)` and the optimal per-sep-edge
/// weights (`None` = some vertex of `⋃S` uncoverable, impossible here).
type PricedSep = Option<(Rational, Vec<(usize, Rational)>)>;

/// The strict-HD strategy (fifth strategy over the shared engine): guesses
/// are separators `S ⊆ E(H')` with `|S| <= ⌊k·d⌋` whose edges stay inside
/// the strictness span `comp ∪ V(R)`, streamed in the legacy DFS pre-order
/// with the `⌊k·rank⌋` union prune applied to whole subtrees; admission
/// enforces `rho*(H_λ) <= k` through a shared separator price cache whose
/// entries double as the witness cover (one LP per separator, total).
struct StrictHd {
    /// The augmented instance `H' = H ∪ h_{d,k}(H)` the search runs on.
    /// Owned (shared with the caller) so the strategy is `'static` and can
    /// ride pool jobs on the process-wide worker pool.
    aug: std::sync::Arc<Augmented>,
    k: Rational,
    support_bound: usize,
    max_union: usize,
    /// `sorted S -> (rho*(H_λ), optimal cover of ⋃S by S)` — shared across
    /// search states and worker threads, and consulted again (not
    /// re-solved) when an admitted separator's witness weights are built.
    sep_cache: std::sync::Arc<ShardedCache<Vec<usize>, PricedSep>>,
    /// One-slot memo for the per-state derivation: the engine calls
    /// [`WidthSolver::state_key`] and then [`WidthSolver::candidates`] on
    /// the same state back to back, and both need the `(usable, allowed)`
    /// pair — cache it so the O(edges) scan plus span unions run once per
    /// state, not twice. The slot re-checks its key before use, so it
    /// stays correct (merely colder) when speculation interleaves states
    /// across workers.
    scope_cache: Mutex<Option<ScopedState>>,
}

/// The cached per-state derivation of [`StrictHd`]: the strictness-filtered
/// candidate edges and the `allowed` span, keyed by `(comp, parent_split)`.
struct ScopedState {
    comp: VertexSet,
    parent_split: VertexSet,
    usable: Vec<usize>,
    allowed: VertexSet,
}

impl StrictHd {
    /// The augmented hypergraph the search runs on.
    fn hg(&self) -> &Hypergraph {
        &self.aug.hypergraph
    }

    /// Usable separator edges (touching the component's closed neighborhood
    /// and inside the strictness span `allowed = comp ∪ (V(R) ∩ span)`),
    /// plus `allowed` itself; memoized per state.
    fn scoped(&self, state: &SearchState<'_>) -> (Vec<usize>, VertexSet) {
        {
            let slot = self.scope_cache.lock().expect("scope cache poisoned");
            if let Some(s) = &*slot {
                if &s.comp == state.comp && &s.parent_split == state.parent_split {
                    return (s.usable.clone(), s.allowed.clone());
                }
            }
        }
        let hg = self.hg();
        let neighborhood = hg.union_of_edges(state.comp_edges.iter().copied());
        let candidates: Vec<usize> = (0..hg.num_edges())
            .filter(|&e| hg.edge(e).intersects(&neighborhood))
            .collect();
        let span = hg.union_of_edges(candidates.iter().copied());
        let allowed = state.comp.union(&state.parent_split.intersection(&span));
        // Strictness prefilter: every separator edge must stay inside
        // comp ∪ V(R) (hoisted out of the subset enumeration).
        let usable: Vec<usize> = candidates
            .into_iter()
            .filter(|&e| hg.edge(e).is_subset(&allowed))
            .collect();
        *self.scope_cache.lock().expect("scope cache poisoned") = Some(ScopedState {
            comp: state.comp.clone(),
            parent_split: state.parent_split.clone(),
            usable: usable.clone(),
            allowed: allowed.clone(),
        });
        (usable, allowed)
    }

    /// `rho*(H_λ) <= k` with the witness cover, via the shared cache. Two
    /// exact-safe filters keep the LP off trivial separators: all-ones
    /// weights give `rho* <= |S|` (and already *are* a conforming witness
    /// cover when `|S| <= k`), and counting coverage gives
    /// `rho* >= |⋃S| / max |e|` for `e ∈ S`.
    fn cover_ok(&self, sep: &[usize], vs: &VertexSet) -> Option<Vec<(usize, Rational)>> {
        if Rational::from(sep.len()) <= self.k {
            return Some(sep.iter().map(|&e| (e, Rational::one())).collect());
        }
        let rank = sep
            .iter()
            .map(|&e| self.hg().edge(e).len())
            .max()
            .expect("separator is non-empty");
        if Rational::from(vs.len()) > &self.k * &Rational::from(rank) {
            return None;
        }
        let (weight, weights) = self
            .sep_cache
            .get_or_insert_with(&sep.to_vec(), || price_separator(self.hg(), sep, vs))?;
        (weight <= self.k).then_some(weights)
    }
}

/// The one LP per separator: an optimal fractional edge cover of `⋃S`
/// using only the edges of `S`, as `(weight, sparse weights by edge id)`.
fn price_separator(h: &Hypergraph, sep: &[usize], vs: &VertexSet) -> PricedSep {
    let sub = Hypergraph::from_edges(
        h.num_vertices(),
        sep.iter().map(|&e| h.edge(e).to_vec()).collect(),
    );
    let c = cover::fractional_cover(&sub, vs)?;
    let weights: Vec<(usize, Rational)> = c
        .weights
        .into_iter()
        .enumerate()
        .filter(|(_, w)| !w.is_zero())
        .map(|(local, w)| (sep[local], w))
        .collect();
    Some((c.weight, weights))
}

/// Maps a cover of `H'` edges onto originator edges of `H`, capping merged
/// weights at one (two subedges of one originator: their combined weight on
/// the originator still covers both parts).
fn push_to_originators(aug: &Augmented, cover: &[(usize, Rational)]) -> Vec<(usize, Rational)> {
    let mut weights: Vec<(usize, Rational)> = Vec::new();
    for (e, w) in cover {
        let orig = aug.originator[*e];
        match weights.iter_mut().find(|(o, _)| *o == orig) {
            Some((_, w0)) => {
                *w0 = (&*w0 + w).min(Rational::one());
            }
            None => weights.push((orig, w.clone())),
        }
    }
    weights
}

impl WidthSolver for StrictHd {
    type Cost = Rational;

    fn is_decision(&self) -> bool {
        true
    }

    fn has_state_key(&self) -> bool {
        true
    }

    fn state_key(&self, _h: &Hypergraph, state: SearchState<'_>) -> Option<VertexSet> {
        // Strictness couples the search to V(R) beyond `conn`: the allowed
        // separator span is comp ∪ V(R), so key on its trace too.
        let (_, allowed) = self.scoped(&state);
        Some(allowed)
    }

    fn candidates<'a>(&'a self, _h: &'a Hypergraph, state: SearchState<'a>) -> CandidateStream<'a> {
        let (usable, _) = self.scoped(&state);
        CandidateStream::new(PrunedEdgeSubsets {
            h: self.hg(),
            usable,
            max_len: self.support_bound,
            max_union: self.max_union,
            stack: Vec::new(),
            cursor: 0,
        })
    }

    fn admit(
        &self,
        _h: &Hypergraph,
        state: SearchState<'_>,
        guess: &Guess,
        _bound: Option<&Rational>,
    ) -> Option<Admission<Rational>> {
        // The stream carries V(S) in `extra`; the engine checks the cover
        // condition (`conn ⊆ bag`) and progress (`split ∩ comp != ∅`).
        let vs = &guess.extra;
        if !state.conn.is_subset(vs) || !vs.intersects(state.comp) {
            return None;
        }
        let sep_cover = self.cover_ok(&guess.edges, vs)?;
        let weights = push_to_originators(&self.aug, &sep_cover);
        let cost: Rational = weights.iter().map(|(_, w)| w.clone()).sum();
        Some(Admission {
            split: vs.clone(),
            bag: vs.clone(),
            cost,
            weights,
        })
    }
}

/// Lazily enumerates the separator subsets of `usable` in the legacy DFS
/// pre-order (each prefix before its extensions, siblings by index), with
/// at most `max_len` edges, pruning every subtree whose running union
/// exceeds `max_union`. Each pulled guess carries the separator's `V(S)`
/// in `extra`, accumulated incrementally along the DFS path.
struct PrunedEdgeSubsets<'a> {
    h: &'a Hypergraph,
    usable: Vec<usize>,
    max_len: usize,
    max_union: usize,
    /// DFS path: `(position in usable, union of the path's edges)`.
    stack: Vec<(usize, VertexSet)>,
    /// Next position to try at the current level.
    cursor: usize,
}

impl Iterator for PrunedEdgeSubsets<'_> {
    type Item = Guess;

    fn next(&mut self) -> Option<Guess> {
        loop {
            if self.stack.len() < self.max_len {
                while self.cursor < self.usable.len() {
                    let i = self.cursor;
                    self.cursor += 1;
                    let union = match self.stack.last() {
                        Some((_, u)) => u.union(self.h.edge(self.usable[i])),
                        None => self.h.edge(self.usable[i]).clone(),
                    };
                    if union.len() > self.max_union {
                        continue;
                    }
                    self.stack.push((i, union.clone()));
                    // Descend: the next call extends this prefix from
                    // i + 1, which is where `cursor` already points.
                    return Some(Guess {
                        edges: self.stack.iter().map(|&(p, _)| self.usable[p]).collect(),
                        extra: union,
                    });
                }
            }
            // Level exhausted (or at max depth): backtrack to the next
            // sibling of the deepest chosen edge.
            let (i, _) = self.stack.pop()?;
            self.cursor = i + 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Legacy oracle: the pre-engine recursion, kept verbatim as an independent
// implementation for the agreement tests (and nothing else).
// ---------------------------------------------------------------------------

/// The pre-engine `Check(FHD, k)`: private `(comp, allowed)`-memoized DFS
/// with its own witness construction. Semantically identical to
/// [`check_fhd_bdp`]; retained purely as the agreement-test oracle.
pub fn check_fhd_bdp_legacy(h: &Hypergraph, k: &Rational, params: HdkParams) -> FhdAnswer {
    let Some((aug, bounds)) = prepare(h, k, params) else {
        return FhdAnswer::No;
    };
    let hp = &aug.hypergraph;
    let mut search = StrictSearch {
        h: hp,
        k: k.clone(),
        support_bound: bounds.support,
        max_union: bounds.union,
        memo: HashMap::new(),
        plans: Vec::new(),
        lp_cache: HashMap::new(),
    };
    let root = hp.all_vertices();
    match search.decompose(&root, &VertexSet::new()) {
        Some(plan) => FhdAnswer::Yes(Box::new(build_fhd(h, &aug, &search, plan))),
        None if aug.truncated => FhdAnswer::Unknown,
        None => FhdAnswer::No,
    }
}

struct PlanNode {
    sep: Vec<usize>,
    children: Vec<usize>,
}

struct StrictSearch<'a> {
    h: &'a Hypergraph,
    k: Rational,
    support_bound: usize,
    /// `⌊k·rank⌋`: separators with larger unions cannot satisfy the LP.
    max_union: usize,
    memo: HashMap<(VertexSet, VertexSet), Option<usize>>,
    plans: Vec<PlanNode>,
    /// `sorted S -> rho*(H_λ) <= k?`
    lp_cache: HashMap<Vec<usize>, bool>,
}

impl StrictSearch<'_> {
    fn decompose(&mut self, comp: &VertexSet, parent_vs: &VertexSet) -> Option<usize> {
        let comp_edges = self.h.edges_intersecting(comp);
        let neighborhood = self.h.union_of_edges(comp_edges.iter().copied());
        let conn = parent_vs.intersection(&neighborhood);
        // Strictness couples the search to V(R) beyond `conn`: the allowed
        // separator span is comp ∪ V(R), so key on its trace too.
        let candidates: Vec<usize> = (0..self.h.num_edges())
            .filter(|&e| self.h.edge(e).intersects(&neighborhood))
            .collect();
        let span = self.h.union_of_edges(candidates.iter().copied());
        let allowed = comp.union(&parent_vs.intersection(&span));
        let key = (comp.clone(), allowed.clone());
        if let Some(hit) = self.memo.get(&key) {
            return *hit;
        }
        // Strictness prefilter: every separator edge must stay inside
        // comp ∪ V(R) (hoisted out of the subset enumeration).
        let usable: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&e| self.h.edge(e).is_subset(&allowed))
            .collect();
        let mut chosen = Vec::new();
        let res = self.dfs(
            comp,
            &conn,
            &comp_edges,
            &usable,
            0,
            &mut chosen,
            &VertexSet::new(),
        );
        self.memo.insert(key, res);
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        comp: &VertexSet,
        conn: &VertexSet,
        comp_edges: &[usize],
        candidates: &[usize],
        start: usize,
        chosen: &mut Vec<usize>,
        vs: &VertexSet,
    ) -> Option<usize> {
        if !chosen.is_empty() {
            if let Some(plan) = self.try_separator(comp, conn, comp_edges, chosen, vs) {
                return Some(plan);
            }
        }
        if chosen.len() == self.support_bound {
            return None;
        }
        for (i, &e) in candidates.iter().enumerate().skip(start) {
            let next_vs = vs.union(self.h.edge(e));
            if next_vs.len() > self.max_union {
                continue;
            }
            chosen.push(e);
            let res = self.dfs(comp, conn, comp_edges, candidates, i + 1, chosen, &next_vs);
            chosen.pop();
            if res.is_some() {
                return res;
            }
        }
        None
    }

    fn try_separator(
        &mut self,
        comp: &VertexSet,
        conn: &VertexSet,
        comp_edges: &[usize],
        chosen: &[usize],
        vs: &VertexSet,
    ) -> Option<usize> {
        if !conn.is_subset(vs) || !vs.intersects(comp) {
            return None;
        }
        // rho*(H_λ) <= k on the separator's own hypergraph.
        if !self.cover_ok(chosen, vs) {
            return None;
        }
        let subs: Vec<VertexSet> = components::components(self.h, vs)
            .into_iter()
            .filter(|sub| sub.is_subset(comp))
            .collect();
        // Edge coverage exactly as in det-k-decomp (checked before the
        // recursive descent — it only needs the component split).
        for &e in comp_edges {
            let edge = self.h.edge(e);
            if edge.is_subset(vs) {
                continue;
            }
            let remainder = edge.difference(vs);
            if !subs.iter().any(|sub| remainder.is_subset(sub)) {
                return None;
            }
        }
        let mut children = Vec::new();
        for sub in &subs {
            let plan = self.decompose(sub, vs)?;
            children.push(plan);
        }
        self.plans.push(PlanNode {
            sep: chosen.to_vec(),
            children,
        });
        Some(self.plans.len() - 1)
    }

    /// `rho*(H_λ) <= k`, with two exact-safe filters so the LP only runs on
    /// genuinely ambiguous separators: all-ones weights give
    /// `rho* <= |S|`, and counting coverage gives
    /// `rho* >= |⋃S| / max |e|` for `e ∈ S`.
    fn cover_ok(&mut self, sep: &[usize], vs: &VertexSet) -> bool {
        if Rational::from(sep.len()) <= self.k {
            return true;
        }
        let rank = sep
            .iter()
            .map(|&e| self.h.edge(e).len())
            .max()
            .expect("separator is non-empty");
        if Rational::from(vs.len()) > &self.k * &Rational::from(rank) {
            return false;
        }
        if let Some(hit) = self.lp_cache.get(sep) {
            return *hit;
        }
        let ok = match price_separator(self.h, sep, vs) {
            Some((weight, _)) => weight <= self.k,
            None => false,
        };
        self.lp_cache.insert(sep.to_vec(), ok);
        ok
    }
}

/// Materializes the FHD of the *original* hypergraph from a strict plan:
/// bag `= ⋃S`, weights = optimal fractional cover of the bag by the
/// separator's edges, pushed to originators.
fn build_fhd(h: &Hypergraph, aug: &Augmented, search: &StrictSearch, plan: usize) -> Decomposition {
    fn node_for(aug: &Augmented, sep: &[usize]) -> Node {
        let hp = &aug.hypergraph;
        let bag = hp.union_of_edges(sep.iter().copied());
        let (_, cover) = price_separator(hp, sep, &bag).expect("separator covers its own union");
        Node {
            bag,
            weights: push_to_originators(aug, &cover),
        }
    }

    fn attach(
        aug: &Augmented,
        search: &StrictSearch,
        plan: usize,
        d: &mut Decomposition,
        parent: Option<usize>,
    ) {
        let p = &search.plans[plan];
        let node = node_for(aug, &p.sep);
        let id = match parent {
            None => {
                *d.node_mut(0) = node;
                0
            }
            Some(pid) => d.add_child(pid, node),
        };
        for &c in &p.children {
            attach(aug, search, c, d, Some(id));
        }
    }

    let _ = h;
    let mut d = Decomposition::new(Node::integral(VertexSet::new(), []));
    attach(aug, search, plan, &mut d, None);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use decomp::validate;
    use hypergraph::generators;

    fn params() -> HdkParams {
        HdkParams::default()
    }

    #[test]
    fn acyclic_accepted_at_k_1() {
        let h = generators::path(5);
        let ans = check_fhd_bdp(&h, &Rational::one(), params());
        let d = ans.decomposition().expect("paths have fhw 1");
        assert_eq!(validate::validate_fhd(&h, &d.clone()), Ok(()));
        assert!(d.width() <= Rational::one());
    }

    #[test]
    fn triangle_accepted_at_three_halves() {
        // fhw(C3) = 3/2 — the fractional optimum must be found, and k = 4/3
        // must be rejected.
        let h = generators::cycle(3);
        let yes = check_fhd_bdp(&h, &rat(3, 2), params());
        let d = yes.decomposition().expect("fhw(C3) = 3/2");
        assert_eq!(validate::validate_fhd(&h, &d.clone()), Ok(()));
        assert!(d.width() <= rat(3, 2));
        let no = check_fhd_bdp(&h, &rat(4, 3), params());
        assert!(!no.is_yes());
    }

    #[test]
    fn cycles_need_2() {
        let h = generators::cycle(5);
        assert!(!check_fhd_bdp(&h, &rat(3, 2), params()).is_yes());
        let yes = check_fhd_bdp(&h, &rat(2, 1), params());
        let d = yes.decomposition().expect("fhw(C5) = 2");
        assert_eq!(validate::validate_fhd(&h, &d.clone()), Ok(()));
    }

    #[test]
    fn agreement_with_exact_fhw_on_bounded_degree_corpus() {
        for seed in 0..3u64 {
            let h = generators::random_bounded_degree(8, 5, 2, 3, seed);
            let Some((exact, _)) = crate::exact::fhw_exact(&h, None) else {
                continue;
            };
            let ans = check_fhd_bdp(&h, &exact, params());
            assert!(
                ans.is_yes(),
                "seed {seed}: BDP check must accept fhw = {exact}"
            );
            if let Some(d) = ans.decomposition() {
                assert_eq!(
                    validate::validate_fhd(&h, &d.clone()),
                    Ok(()),
                    "seed {seed}"
                );
                assert!(d.width() <= exact, "seed {seed}");
            }
        }
    }

    #[test]
    fn integer_search() {
        let h = generators::cycle(4);
        let (k, d) = fhw_bdp_integer_search(&h, 3, params()).unwrap();
        assert_eq!(k, 2);
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
    }

    #[test]
    fn engine_strategy_agrees_with_legacy_oracle() {
        // The fifth strategy must return the same yes/no as the retired
        // private recursion, with both witnesses validating at width k.
        let mut cases: Vec<(Hypergraph, Rational)> = vec![
            (generators::path(5), Rational::one()),
            (generators::cycle(3), rat(3, 2)),
            (generators::cycle(3), rat(4, 3)),
            (generators::cycle(4), rat(2, 1)),
            (generators::star(4), Rational::one()),
        ];
        for seed in 0..3u64 {
            cases.push((
                generators::random_bounded_degree(7, 4, 2, 3, seed),
                rat(2, 1),
            ));
        }
        for (h, k) in cases {
            let engine = check_fhd_bdp(&h, &k, params());
            let legacy = check_fhd_bdp_legacy(&h, &k, params());
            assert_eq!(
                engine.is_yes(),
                legacy.is_yes(),
                "engine vs legacy on {h:?} at k = {k}"
            );
            for (name, ans) in [("engine", &engine), ("legacy", &legacy)] {
                if let Some(d) = ans.decomposition() {
                    assert_eq!(validate::validate_fhd(&h, &d.clone()), Ok(()), "{name}");
                    assert!(d.width() <= k, "{name} witness exceeds {k}");
                }
            }
        }
    }

    #[test]
    fn strict_search_reports_lp_cache_activity() {
        let h = generators::cycle(3);
        // Fresh per-search caches (`sequential`): with the cross-call
        // registry another test in this binary may already have priced
        // these separators, which would zero the misses.
        let (ans, stats) =
            check_fhd_bdp_with_stats(&h, &rat(3, 2), params(), EngineOptions::sequential());
        assert!(ans.is_yes());
        assert!(stats.states > 0);
        assert!(stats.streamed >= stats.admitted);
        // The triangle at k = 3/2 needs genuinely fractional separators, so
        // at least one separator LP ran.
        assert!(stats.price_misses > 0);
    }
}
