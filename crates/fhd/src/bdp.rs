//! `Check(FHD, k)` for bounded-degree hypergraphs (Theorem 5.2) through the
//! characterization of Theorem 5.22:
//!
//! > `fhw(H) <= k` iff `H' = H ∪ h_{d,k}(H)` admits a *strict* HD of width
//! > `<= k·d` in normal form whose every node `u` satisfies
//! > `rho*(H_{λ_u}) <= k`.
//!
//! The search is the `det-k-decomp` recursion over `H'` with two extra
//! checks per guessed separator `S` (the modified algorithm in the proof of
//! Theorem 5.2): strictness `⋃S ⊆ B(λ_r) ∪ treecomp(u)` — in recursion
//! terms `V(S) ⊆ C_r ∪ V(R)` — and the LP bound `rho*(⋃S via S) <= k`.
//! A found strict HD converts into an FHD of `H` of width `<= k` by
//! re-covering each bag fractionally and pushing subedge weights to their
//! originators.

use crate::subedges::{hdk_subedges, HdkParams};
use arith::Rational;
use decomp::{Decomposition, Node};
use ghd::check::{augment, Augmented};
use hypergraph::{components, properties, Hypergraph, VertexSet};
use std::collections::HashMap;

/// Outcome of the bounded-degree FHD check.
#[derive(Clone, Debug)]
pub enum FhdAnswer {
    /// An FHD of `H` of width `<= k`.
    Yes(Box<Decomposition>),
    /// Certified: no FHD of width `<= k` exists (complete enumeration).
    No,
    /// The subedge enumeration was truncated; a failed search is not a
    /// certified "no".
    Unknown,
}

impl FhdAnswer {
    /// The witness, if any.
    pub fn decomposition(&self) -> Option<&Decomposition> {
        match self {
            FhdAnswer::Yes(d) => Some(d),
            _ => None,
        }
    }

    /// True iff a witness was found.
    pub fn is_yes(&self) -> bool {
        matches!(self, FhdAnswer::Yes(_))
    }
}

/// `Check(FHD, k)` under the bounded degree property (Theorem 5.2).
///
/// `k` may be rational (e.g. `3/2`); the support bound is `⌊k·d⌋` per
/// Lemma 5.6. `params` bounds the `h_{d,k}` enumeration — with the paper's
/// (galactic) defaults the algorithm is complete; with practical caps the
/// `No` answer degrades to `Unknown` when truncation occurred.
pub fn check_fhd_bdp(h: &Hypergraph, k: &Rational, params: HdkParams) -> FhdAnswer {
    if h.has_isolated_vertices() || !k.is_positive() {
        return FhdAnswer::No;
    }
    let d = properties::degree(h);
    let aug = augment(h, hdk_subedges(h, d, params));
    let support_bound = (k * &Rational::from(d)).floor();
    let support_bound = support_bound.to_i64().unwrap_or(i64::MAX).max(0) as usize;
    if support_bound == 0 {
        return FhdAnswer::No;
    }
    let hp = &aug.hypergraph;
    // Branch prune: rho*(H_λ) >= |⋃S| / rank, so any separator whose union
    // exceeds k·rank vertices — and every superset of it — is hopeless.
    let rank = properties::rank(hp);
    let max_union = (k * &Rational::from(rank)).floor();
    let max_union = max_union.to_i64().unwrap_or(i64::MAX).max(0) as usize;
    let mut search = StrictSearch {
        h: hp,
        k: k.clone(),
        support_bound,
        max_union,
        memo: HashMap::new(),
        plans: Vec::new(),
        lp_cache: HashMap::new(),
    };
    let root = hp.all_vertices();
    match search.decompose(&root, &VertexSet::new()) {
        Some(plan) => FhdAnswer::Yes(Box::new(build_fhd(h, &aug, &search, plan))),
        None if aug.truncated => FhdAnswer::Unknown,
        None => FhdAnswer::No,
    }
}

/// `fhw` upper search for BDP instances: smallest integer `k <= max_k`
/// accepted by [`check_fhd_bdp`].
pub fn fhw_bdp_integer_search(
    h: &Hypergraph,
    max_k: usize,
    params: HdkParams,
) -> Option<(usize, Decomposition)> {
    for k in 1..=max_k {
        if let FhdAnswer::Yes(d) = check_fhd_bdp(h, &Rational::from(k), params) {
            return Some((k, *d));
        }
    }
    None
}

struct PlanNode {
    sep: Vec<usize>,
    children: Vec<usize>,
}

struct StrictSearch<'a> {
    h: &'a Hypergraph,
    k: Rational,
    support_bound: usize,
    /// `⌊k·rank⌋`: separators with larger unions cannot satisfy the LP.
    max_union: usize,
    memo: HashMap<(VertexSet, VertexSet), Option<usize>>,
    plans: Vec<PlanNode>,
    /// `sorted S -> rho*(H_λ) <= k?`
    lp_cache: HashMap<Vec<usize>, bool>,
}

impl<'a> StrictSearch<'a> {
    fn decompose(&mut self, comp: &VertexSet, parent_vs: &VertexSet) -> Option<usize> {
        let comp_edges = self.h.edges_intersecting(comp);
        let neighborhood = self.h.union_of_edges(comp_edges.iter().copied());
        let conn = parent_vs.intersection(&neighborhood);
        // Strictness couples the search to V(R) beyond `conn`: the allowed
        // separator span is comp ∪ V(R), so key on its trace too.
        let candidates: Vec<usize> = (0..self.h.num_edges())
            .filter(|&e| self.h.edge(e).intersects(&neighborhood))
            .collect();
        let span = self.h.union_of_edges(candidates.iter().copied());
        let allowed = comp.union(&parent_vs.intersection(&span));
        let key = (comp.clone(), allowed.clone());
        if let Some(hit) = self.memo.get(&key) {
            return *hit;
        }
        // Strictness prefilter: every separator edge must stay inside
        // comp ∪ V(R) (hoisted out of the subset enumeration).
        let usable: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&e| self.h.edge(e).is_subset(&allowed))
            .collect();
        let mut chosen = Vec::new();
        let res = self.dfs(
            comp,
            &conn,
            &comp_edges,
            &usable,
            0,
            &mut chosen,
            &VertexSet::new(),
        );
        self.memo.insert(key, res);
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        comp: &VertexSet,
        conn: &VertexSet,
        comp_edges: &[usize],
        candidates: &[usize],
        start: usize,
        chosen: &mut Vec<usize>,
        vs: &VertexSet,
    ) -> Option<usize> {
        if !chosen.is_empty() {
            if let Some(plan) = self.try_separator(comp, conn, comp_edges, chosen, vs) {
                return Some(plan);
            }
        }
        if chosen.len() == self.support_bound {
            return None;
        }
        for (i, &e) in candidates.iter().enumerate().skip(start) {
            let next_vs = vs.union(self.h.edge(e));
            if next_vs.len() > self.max_union {
                continue;
            }
            chosen.push(e);
            let res = self.dfs(comp, conn, comp_edges, candidates, i + 1, chosen, &next_vs);
            chosen.pop();
            if res.is_some() {
                return res;
            }
        }
        None
    }

    fn try_separator(
        &mut self,
        comp: &VertexSet,
        conn: &VertexSet,
        comp_edges: &[usize],
        chosen: &[usize],
        vs: &VertexSet,
    ) -> Option<usize> {
        if !conn.is_subset(vs) || !vs.intersects(comp) {
            return None;
        }
        // rho*(H_λ) <= k on the separator's own hypergraph.
        if !self.cover_ok(chosen, vs) {
            return None;
        }
        let subs: Vec<VertexSet> = components::components(self.h, vs)
            .into_iter()
            .filter(|sub| sub.is_subset(comp))
            .collect();
        // Edge coverage exactly as in det-k-decomp (checked before the
        // recursive descent — it only needs the component split).
        for &e in comp_edges {
            let edge = self.h.edge(e);
            if edge.is_subset(vs) {
                continue;
            }
            let remainder = edge.difference(vs);
            if !subs.iter().any(|sub| remainder.is_subset(sub)) {
                return None;
            }
        }
        let mut children = Vec::new();
        for sub in &subs {
            let plan = self.decompose(sub, vs)?;
            children.push(plan);
        }
        self.plans.push(PlanNode {
            sep: chosen.to_vec(),
            children,
        });
        Some(self.plans.len() - 1)
    }

    /// `rho*(H_λ) <= k`, with two exact-safe filters so the LP only runs on
    /// genuinely ambiguous separators: all-ones weights give
    /// `rho* <= |S|`, and counting coverage gives
    /// `rho* >= |⋃S| / max |e|` for `e ∈ S`.
    fn cover_ok(&mut self, sep: &[usize], vs: &VertexSet) -> bool {
        if Rational::from(sep.len()) <= self.k {
            return true;
        }
        let rank = sep
            .iter()
            .map(|&e| self.h.edge(e).len())
            .max()
            .expect("separator is non-empty");
        if Rational::from(vs.len()) > &self.k * &Rational::from(rank) {
            return false;
        }
        if let Some(hit) = self.lp_cache.get(sep) {
            return *hit;
        }
        // Fractional edge cover of ⋃S using only the edges of S.
        let sub = Hypergraph::from_edges(
            self.h.num_vertices(),
            sep.iter().map(|&e| self.h.edge(e).to_vec()).collect(),
        );
        let ok = match cover::fractional_cover(&sub, vs) {
            Some(c) => c.weight <= self.k,
            None => false,
        };
        self.lp_cache.insert(sep.to_vec(), ok);
        ok
    }
}

/// Materializes the FHD of the *original* hypergraph from a strict plan:
/// bag `= ⋃S`, weights = optimal fractional cover of the bag by the
/// separator's edges, pushed to originators.
fn build_fhd(h: &Hypergraph, aug: &Augmented, search: &StrictSearch, plan: usize) -> Decomposition {
    fn node_for(h: &Hypergraph, aug: &Augmented, sep: &[usize]) -> Node {
        let hp = &aug.hypergraph;
        let bag = hp.union_of_edges(sep.iter().copied());
        let sub = Hypergraph::from_edges(
            hp.num_vertices(),
            sep.iter().map(|&e| hp.edge(e).to_vec()).collect(),
        );
        let c = cover::fractional_cover(&sub, &bag).expect("separator covers its own union");
        let mut weights: Vec<(usize, Rational)> = Vec::new();
        for (local, w) in c.weights.into_iter().enumerate() {
            if w.is_zero() {
                continue;
            }
            let orig = aug.originator[sep[local]];
            match weights.iter_mut().find(|(e, _)| *e == orig) {
                // Two subedges of one originator: their combined weight on
                // the originator still covers both parts; cap at 1.
                Some((_, w0)) => {
                    *w0 = (&*w0 + &w).min(Rational::one());
                }
                None => weights.push((orig, w)),
            }
        }
        let _ = h;
        Node { bag, weights }
    }

    fn attach(
        h: &Hypergraph,
        aug: &Augmented,
        search: &StrictSearch,
        plan: usize,
        d: &mut Decomposition,
        parent: Option<usize>,
    ) {
        let p = &search.plans[plan];
        let node = node_for(h, aug, &p.sep);
        let id = match parent {
            None => {
                *d.node_mut(0) = node;
                0
            }
            Some(pid) => d.add_child(pid, node),
        };
        for &c in &p.children {
            attach(h, aug, search, c, d, Some(id));
        }
    }

    let mut d = Decomposition::new(Node::integral(VertexSet::new(), []));
    attach(h, aug, search, plan, &mut d, None);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use decomp::validate;
    use hypergraph::generators;

    fn params() -> HdkParams {
        HdkParams::default()
    }

    #[test]
    fn acyclic_accepted_at_k_1() {
        let h = generators::path(5);
        let ans = check_fhd_bdp(&h, &Rational::one(), params());
        let d = ans.decomposition().expect("paths have fhw 1");
        assert_eq!(validate::validate_fhd(&h, &d.clone()), Ok(()));
        assert!(d.width() <= Rational::one());
    }

    #[test]
    fn triangle_accepted_at_three_halves() {
        // fhw(C3) = 3/2 — the fractional optimum must be found, and k = 4/3
        // must be rejected.
        let h = generators::cycle(3);
        let yes = check_fhd_bdp(&h, &rat(3, 2), params());
        let d = yes.decomposition().expect("fhw(C3) = 3/2");
        assert_eq!(validate::validate_fhd(&h, &d.clone()), Ok(()));
        assert!(d.width() <= rat(3, 2));
        let no = check_fhd_bdp(&h, &rat(4, 3), params());
        assert!(!no.is_yes());
    }

    #[test]
    fn cycles_need_2() {
        let h = generators::cycle(5);
        assert!(!check_fhd_bdp(&h, &rat(3, 2), params()).is_yes());
        let yes = check_fhd_bdp(&h, &rat(2, 1), params());
        let d = yes.decomposition().expect("fhw(C5) = 2");
        assert_eq!(validate::validate_fhd(&h, &d.clone()), Ok(()));
    }

    #[test]
    fn agreement_with_exact_fhw_on_bounded_degree_corpus() {
        for seed in 0..3u64 {
            let h = generators::random_bounded_degree(8, 5, 2, 3, seed);
            let Some((exact, _)) = crate::exact::fhw_exact(&h, None) else {
                continue;
            };
            let ans = check_fhd_bdp(&h, &exact, params());
            assert!(
                ans.is_yes(),
                "seed {seed}: BDP check must accept fhw = {exact}"
            );
            if let Some(d) = ans.decomposition() {
                assert_eq!(
                    validate::validate_fhd(&h, &d.clone()),
                    Ok(()),
                    "seed {seed}"
                );
                assert!(d.width() <= exact, "seed {seed}");
            }
        }
    }

    #[test]
    fn integer_search() {
        let h = generators::cycle(4);
        let (k, d) = fhw_bdp_integer_search(&h, 3, params()).unwrap();
        assert_eq!(k, 2);
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
    }
}
