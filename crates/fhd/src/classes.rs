//! Types and classes (Definitions 5.7–5.10): the combinatorial vocabulary
//! behind the intersection forests of Algorithm 2.
//!
//! A *type* is a set of edges; its *class* is their intersection. Every set
//! `B(γ)` is a union of classes of the support of `γ` (Lemma 5.10), which
//! bounds the number of candidate `B(γ)`-sets by `2^{|C(S)|}`.

use arith::Rational;
use hypergraph::{Hypergraph, VertexSet};
use std::collections::HashSet;

/// `C(S)`: all distinct non-empty classes `⋂ t` over non-empty types
/// `t ⊆ S` (Definition 5.9). `S` is a set of edge indices; `|S| <= 20`.
pub fn classes(h: &Hypergraph, support: &[usize]) -> Vec<VertexSet> {
    assert!(support.len() <= 20, "class enumeration limited to 20 edges");
    let mut seen: HashSet<VertexSet> = HashSet::new();
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << support.len()) {
        let members = support
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &e)| e);
        let class = h.intersection_of_edges(members);
        if !class.is_empty() && seen.insert(class.clone()) {
            out.push(class);
        }
    }
    out
}

/// The unique *maximal* type of a class `c`: `{e ∈ E(H) | c ⊆ e}`
/// (Definition 5.9).
pub fn maximal_type(h: &Hypergraph, class: &VertexSet) -> Vec<usize> {
    (0..h.num_edges())
        .filter(|&e| class.is_subset(h.edge(e)))
        .collect()
}

/// `B(γ)` expressed through classes: the union of `class(t)` over all types
/// `t ⊆ supp(γ)` with `γ(t) = Σ_{e ∈ t} γ(e) >= 1` (the observation after
/// Definition 5.9). Equal to the direct per-vertex computation; used to test
/// Lemma 5.10.
pub fn covered_via_classes(h: &Hypergraph, weights: &[(usize, Rational)]) -> VertexSet {
    let support: Vec<usize> = weights
        .iter()
        .filter(|(_, w)| !w.is_zero())
        .map(|(e, _)| *e)
        .collect();
    assert!(support.len() <= 20);
    let mut out = VertexSet::new();
    for mask in 1u32..(1u32 << support.len()) {
        let total: Rational = support
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, e)| {
                weights
                    .iter()
                    .find(|(e2, _)| e2 == e)
                    .map(|(_, w)| w.clone())
                    .unwrap_or_else(Rational::zero)
            })
            .sum();
        if total >= Rational::one() {
            let members = support
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e);
            out.union_with(&h.intersection_of_edges(members));
        }
    }
    out
}

/// All unions of at most `arity` classes from `classes` — the family
/// `⋓_arity C(S)` of Definition 5.7, deduplicated, capped at `cap` members.
/// Returns `(sets, truncated)`.
pub fn unions_of_classes(
    classes: &[VertexSet],
    arity: usize,
    cap: usize,
) -> (Vec<VertexSet>, bool) {
    let mut seen: HashSet<VertexSet> = HashSet::new();
    let mut out: Vec<VertexSet> = Vec::new();
    // Level-wise closure: unions of exactly j classes extend unions of j-1.
    let mut frontier: Vec<VertexSet> = vec![VertexSet::new()];
    for _ in 0..arity {
        let mut next = Vec::new();
        for base in &frontier {
            for c in classes {
                let u = base.union(c);
                if !u.is_empty() && seen.insert(u.clone()) {
                    if out.len() >= cap {
                        return (out, true);
                    }
                    out.push(u.clone());
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    (out, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use hypergraph::generators;

    #[test]
    fn classes_of_a_triangle() {
        let h = generators::cycle(3); // e0={0,1}, e1={1,2}, e2={0,2}
        let s: Vec<usize> = vec![0, 1, 2];
        let cs = classes(&h, &s);
        // Singles {0,1},{1,2},{0,2} plus pairwise {1},{0},{2}; triple empty.
        assert_eq!(cs.len(), 6);
    }

    #[test]
    fn maximal_type_is_maximal() {
        let h = generators::cycle(3);
        let class = VertexSet::from_iter([1]);
        let t = maximal_type(&h, &class);
        assert_eq!(t, vec![0, 1]); // both edges containing vertex 1
    }

    #[test]
    fn lemma_5_10_b_gamma_is_union_of_classes() {
        // The fractional cover of the triangle with weight 1/2 everywhere:
        // B(γ) = all three vertices, realized through the pairwise types.
        let h = generators::cycle(3);
        let weights: Vec<(usize, Rational)> = (0..3).map(|e| (e, rat(1, 2))).collect();
        let via_classes = covered_via_classes(&h, &weights);
        let direct = {
            let mut dense = vec![Rational::zero(); h.num_edges()];
            for (e, w) in &weights {
                dense[*e] = w.clone();
            }
            cover::covered_vertices(&h, &dense)
        };
        assert_eq!(via_classes, direct);
    }

    #[test]
    fn lemma_5_10_on_random_weightings() {
        let h = generators::example_5_1(4);
        // A few deterministic pseudo-random weightings.
        for salt in 0..6u64 {
            let weights: Vec<(usize, Rational)> = (0..h.num_edges())
                .map(|e| (e, rat(((salt * 7 + e as u64 * 13) % 5) as i64, 4)))
                .filter(|(_, w)| !w.is_zero() && *w <= Rational::one())
                .collect();
            let via = covered_via_classes(&h, &weights);
            let mut dense = vec![Rational::zero(); h.num_edges()];
            for (e, w) in &weights {
                dense[*e] = w.clone();
            }
            assert_eq!(via, cover::covered_vertices(&h, &dense), "salt {salt}");
        }
    }

    #[test]
    fn union_family_size_bounds() {
        let h = generators::cycle(3);
        let cs = classes(&h, &[0, 1, 2]);
        let (unions, truncated) = unions_of_classes(&cs, 2, 1000);
        assert!(!truncated);
        // |⋓_i S| <= |S|^{i+1} (Definition 5.7's remark).
        assert!(unions.len() <= cs.len().pow(3));
        // Cap honoured.
        let (capped, truncated) = unions_of_classes(&cs, 3, 4);
        assert!(truncated);
        assert_eq!(capped.len(), 4);
    }
}
