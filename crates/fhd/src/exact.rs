//! Exact `fhw` baseline, expressed as a minimizing strategy over the shared
//! [`solver`] engine: candidate bags are all sets `conn ⊆ B ⊆ conn ∪ C`
//! priced by the fractional edge cover number `rho*(B)` (computed by exact
//! LP). Widths are exact rationals — e.g. `fhw(C3) = 3/2` comes out as the
//! literal fraction.

use arith::Rational;
use decomp::Decomposition;
use hypergraph::{Hypergraph, VertexSet};
use solver::{Admission, Guess, SearchContext, SearchState, WidthSolver};
use std::collections::HashMap;

/// Computes `fhw(H)` exactly together with an optimal FHD.
///
/// Instances up to [`solver::MAX_SUBSET_SEARCH_VERTICES`] vertices run on
/// the shared-engine subset search; between that and
/// [`ghd::elimination::MAX_EXACT_VERTICES`] vertices (where the subset
/// enumeration is infeasible) the legacy elimination-order DP answers
/// instead. Returns `None` when `H` is larger still, has isolated
/// vertices, or `cutoff` is given and `fhw(H) >= cutoff`.
pub fn fhw_exact(h: &Hypergraph, cutoff: Option<Rational>) -> Option<(Rational, Decomposition)> {
    if h.has_isolated_vertices() {
        return None;
    }
    if h.num_vertices() > solver::MAX_SUBSET_SEARCH_VERTICES {
        return fhw_by_elimination(h, cutoff);
    }
    let mut strategy = FhwSearch {
        cutoff,
        cover_cache: HashMap::new(),
    };
    let (width, d) = SearchContext::new().run(h, &mut strategy)?;
    debug_assert!(d.width() <= width);
    Some((width, d))
}

/// The pre-engine implementation, kept for 19–24-vertex instances.
fn fhw_by_elimination(
    h: &Hypergraph,
    cutoff: Option<Rational>,
) -> Option<(Rational, Decomposition)> {
    let (width, order) = ghd::elimination::optimal_elimination(
        h,
        |bag| {
            cover::fractional_cover(h, bag)
                .expect("no isolated vertices, so every bag is coverable")
                .weight
        },
        cutoff,
    )?;
    let d = ghd::elimination::assemble(h, &order, |bag| {
        let c = cover::fractional_cover(h, bag).expect("coverable");
        c.weights
            .into_iter()
            .enumerate()
            .filter(|(_, w)| !w.is_zero())
            .collect()
    });
    debug_assert!(d.width() <= width);
    Some((width, d))
}

/// A priced fractional cover: `(rho*(bag), optimal weights)`.
type PricedCover = Option<(Rational, Vec<(usize, Rational)>)>;

/// The exact-`fhw` strategy: subset bags priced by `rho*` with a
/// [`VertexSet`]-keyed LP cache.
struct FhwSearch {
    cutoff: Option<Rational>,
    /// `bag -> (rho*(bag), optimal weights)` — the LP is admission's
    /// dominant cost and bags repeat across search states.
    cover_cache: HashMap<VertexSet, PricedCover>,
}

impl WidthSolver for FhwSearch {
    type Cost = Rational;

    fn is_decision(&self) -> bool {
        false
    }

    fn cutoff(&self) -> Option<Rational> {
        self.cutoff.clone()
    }

    fn propose(&mut self, _h: &Hypergraph, state: &SearchState<'_>) -> Vec<Guess> {
        solver::propose_subset_bags(state)
    }

    fn admit(
        &mut self,
        h: &Hypergraph,
        _state: &SearchState<'_>,
        guess: &Guess,
    ) -> Option<Admission<Rational>> {
        let bag = &guess.extra;
        let (weight, weights) = self
            .cover_cache
            .entry(bag.clone())
            .or_insert_with(|| {
                cover::fractional_cover(h, bag).map(|c| {
                    let weights: Vec<(usize, Rational)> = c
                        .weights
                        .into_iter()
                        .enumerate()
                        .filter(|(_, w)| !w.is_zero())
                        .collect();
                    (c.weight, weights)
                })
            })
            .clone()?;
        Some(Admission {
            split: bag.clone(),
            bag: bag.clone(),
            cost: weight,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use decomp::validate;
    use hypergraph::generators;

    fn assert_fhw(h: &Hypergraph, expected: Rational) {
        let (w, d) = fhw_exact(h, None).expect("small instance");
        assert_eq!(w, expected);
        assert_eq!(validate::validate_fhd(h, &d), Ok(()), "{}", d.render(h));
        assert!(d.width() <= expected);
    }

    #[test]
    fn triangle_is_three_halves() {
        assert_fhw(&generators::cycle(3), rat(3, 2));
    }

    #[test]
    fn longer_cycles_are_2() {
        for n in 4..8 {
            assert_fhw(&generators::cycle(n), rat(2, 1));
        }
    }

    #[test]
    fn cliques_are_half_n() {
        // Lemma 2.3 (and its odd extension): fhw(K_m) = m/2.
        for m in 3..7i64 {
            assert_fhw(&generators::clique(m as usize), rat(m, 2));
        }
    }

    #[test]
    fn acyclic_is_1() {
        assert_fhw(&generators::path(6), rat(1, 1));
        assert_fhw(&generators::cq_chain(4, 3, 1), rat(1, 1));
    }

    #[test]
    fn example_4_3_fhw_is_2() {
        // fhw <= ghw = 2, and the 4-clique-free structure still forces 2
        // (H0 is cyclic with only small edges).
        let h = generators::example_4_3();
        let (w, _) = fhw_exact(&h, None).unwrap();
        assert!(w > Rational::one());
        assert!(w <= rat(2, 1));
    }

    #[test]
    fn hierarchy_fhw_le_ghw_le_hw() {
        // Lemma-level sanity across engines on a mixed corpus.
        for seed in 0..4u64 {
            let h = generators::random_bip(8, 6, 2, 3, seed);
            let (fhw, _) = fhw_exact(&h, None).unwrap();
            let (ghw, _) = ghd::ghw_exact(&h, None).unwrap();
            let hw = hd::hypertree_width(&h, 6).map(|(w, _)| w).unwrap();
            assert!(fhw <= Rational::from(ghw), "seed {seed}");
            assert!(ghw <= hw, "seed {seed}");
            // Adler-Gottlob-Grohe: hw <= 3*ghw + 1.
            assert!(hw <= 3 * ghw + 1, "seed {seed}");
        }
    }

    #[test]
    fn lemma_2_7_monotone_under_induced_subhypergraphs() {
        let h = generators::example_4_3();
        let (whole, _) = fhw_exact(&h, None).unwrap();
        // Drop two vertices; fhw must not increase.
        let mut w = h.all_vertices();
        w.remove(0);
        w.remove(5);
        let (sub, _, _) = h.induced(&w);
        if !sub.has_isolated_vertices() {
            let (part, _) = fhw_exact(&sub, None).unwrap();
            assert!(part <= whole);
        }
    }

    #[test]
    fn cutoff_certifies_lower_bound() {
        let h = generators::cycle(3);
        assert!(fhw_exact(&h, Some(rat(3, 2))).is_none());
        assert_eq!(fhw_exact(&h, Some(rat(2, 1))).unwrap().0, rat(3, 2));
    }

    #[test]
    fn engine_agrees_with_elimination_dp_baseline() {
        // Certify the shared-engine search against the independent
        // elimination-order DP kept in `ghd::elimination`.
        let corpus = vec![
            generators::cycle(3),
            generators::cycle(6),
            generators::clique(5),
            generators::triangle_chain(2),
            generators::example_4_3(),
            generators::example_5_1(4),
        ];
        for h in corpus {
            let engine = fhw_exact(&h, None).map(|(w, _)| w);
            let dp = ghd::elimination::optimal_elimination(
                &h,
                |bag| cover::fractional_cover(&h, bag).expect("coverable").weight,
                None,
            )
            .map(|(w, _)| w);
            assert_eq!(engine, dp, "engine vs elimination DP on {h:?}");
        }
    }
}
