//! Exact `fhw` baseline: elimination-order DP with the fractional edge
//! cover number `rho*` (computed by exact LP) as the bag cost. Widths are
//! exact rationals — e.g. `fhw(C3) = 3/2` comes out as the literal fraction.

use arith::Rational;
use decomp::Decomposition;
use ghd::elimination::{assemble, optimal_elimination};
use hypergraph::Hypergraph;

/// Computes `fhw(H)` exactly together with an optimal FHD.
///
/// Returns `None` when `H` exceeds the subset-DP size limit, has isolated
/// vertices, or `cutoff` is given and `fhw(H) >= cutoff`.
pub fn fhw_exact(h: &Hypergraph, cutoff: Option<Rational>) -> Option<(Rational, Decomposition)> {
    if h.has_isolated_vertices() {
        return None;
    }
    let (width, order) = optimal_elimination(
        h,
        |bag| {
            cover::fractional_cover(h, bag)
                .expect("no isolated vertices, so every bag is coverable")
                .weight
        },
        cutoff,
    )?;
    let d = assemble(h, &order, |bag| {
        let c = cover::fractional_cover(h, bag).expect("coverable");
        c.weights
            .into_iter()
            .enumerate()
            .filter(|(_, w)| !w.is_zero())
            .collect()
    });
    debug_assert!(d.width() <= width);
    Some((width, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use decomp::validate;
    use hypergraph::generators;

    fn assert_fhw(h: &Hypergraph, expected: Rational) {
        let (w, d) = fhw_exact(h, None).expect("small instance");
        assert_eq!(w, expected);
        assert_eq!(validate::validate_fhd(h, &d), Ok(()), "{}", d.render(h));
        assert!(d.width() <= expected);
    }

    #[test]
    fn triangle_is_three_halves() {
        assert_fhw(&generators::cycle(3), rat(3, 2));
    }

    #[test]
    fn longer_cycles_are_2() {
        for n in 4..8 {
            assert_fhw(&generators::cycle(n), rat(2, 1));
        }
    }

    #[test]
    fn cliques_are_half_n() {
        // Lemma 2.3 (and its odd extension): fhw(K_m) = m/2.
        for m in 3..7i64 {
            assert_fhw(&generators::clique(m as usize), rat(m, 2));
        }
    }

    #[test]
    fn acyclic_is_1() {
        assert_fhw(&generators::path(6), rat(1, 1));
        assert_fhw(&generators::cq_chain(4, 3, 1), rat(1, 1));
    }

    #[test]
    fn example_4_3_fhw_is_2() {
        // fhw <= ghw = 2, and the 4-clique-free structure still forces 2
        // (H0 is cyclic with only small edges).
        let h = generators::example_4_3();
        let (w, _) = fhw_exact(&h, None).unwrap();
        assert!(w > Rational::one());
        assert!(w <= rat(2, 1));
    }

    #[test]
    fn hierarchy_fhw_le_ghw_le_hw() {
        // Lemma-level sanity across engines on a mixed corpus.
        for seed in 0..4u64 {
            let h = generators::random_bip(8, 6, 2, 3, seed);
            let (fhw, _) = fhw_exact(&h, None).unwrap();
            let (ghw, _) = ghd::ghw_exact(&h, None).unwrap();
            let hw = hd::hypertree_width(&h, 6).map(|(w, _)| w).unwrap();
            assert!(fhw <= Rational::from(ghw), "seed {seed}");
            assert!(ghw <= hw, "seed {seed}");
            // Adler-Gottlob-Grohe: hw <= 3*ghw + 1.
            assert!(hw <= 3 * ghw + 1, "seed {seed}");
        }
    }

    #[test]
    fn lemma_2_7_monotone_under_induced_subhypergraphs() {
        let h = generators::example_4_3();
        let (whole, _) = fhw_exact(&h, None).unwrap();
        // Drop two vertices; fhw must not increase.
        let mut w = h.all_vertices();
        w.remove(0);
        w.remove(5);
        let (sub, _, _) = h.induced(&w);
        if !sub.has_isolated_vertices() {
            let (part, _) = fhw_exact(&sub, None).unwrap();
            assert!(part <= whole);
        }
    }

    #[test]
    fn cutoff_certifies_lower_bound() {
        let h = generators::cycle(3);
        assert!(fhw_exact(&h, Some(rat(3, 2))).is_none());
        assert_eq!(fhw_exact(&h, Some(rat(2, 1))).unwrap().0, rat(3, 2));
    }
}
