//! Exact `fhw` baseline, expressed as a minimizing strategy over the shared
//! [`solver`] engine, with candidate bags priced by the fractional edge
//! cover number `rho*(B)` (computed by exact LP). Widths are exact
//! rationals — e.g. `fhw(C3) = 3/2` comes out as the literal fraction.
//!
//! Candidate generation is hybrid: the `candgen` edge-union stream runs
//! first (component-restricted unions of at most `⌈ub⌉` edges — the bags
//! of bag-maximal GHD normal form, which are usually where cheap
//! fractional covers live), then the subset stream completes the space.
//! Unlike the integral case, *fractional* covers do not normalize to
//! unions of few edges (a bag's `B(γ)` can be a strict subset of
//! `⋃ supp(γ)`), so the subset tail is what keeps the search exact — the
//! edge-union prefix only front-loads good candidates so the
//! witness-backed heuristic bound `ub` and the engine's pre-pricing gates
//! prune the tail hard. A search failing at the seeded cutoff *is* the
//! exact answer `ub`. Pieces beyond the subset range fall back to the
//! elimination DP (its cutoff also seeded by `ub`), and the subset-only
//! path survives as [`fhw_exact_subset_oracle`].

use arith::Rational;
use cover::{PricingContext, PricingPool, RhoStarCache};
use decomp::Decomposition;
use hypergraph::{properties, Hypergraph, VertexSet};
use solver::{
    Admission, CandidateStream, EngineOptions, Guess, SearchContext, SearchState, SearchStats,
    WidthSolver,
};
use std::sync::Arc;

/// Edge-union feasibility cap for the hybrid prefix (shared with the
/// `ghw` engine through `candgen`): when the per-state enumeration would
/// exceed this many unions the prefix is skipped (the subset tail alone
/// is the old, still-exact behavior).
const CANDGEN_STREAM_CAP: u64 = candgen::DEFAULT_STREAM_CAP;

/// Minimum piece size for the candgen apparatus (heuristic seed and
/// edge-union prefix): below this the subset space is at most `2^8` bags
/// and the plain engine beats any seeding or reordering overhead.
const PREFIX_MIN_VERTICES: usize = 9;

/// Computes `fhw(H)` exactly together with an optimal FHD.
///
/// Pieces up to [`solver::MAX_SUBSET_SEARCH_VERTICES`] vertices run on
/// the shared-engine hybrid search; between that and
/// [`ghd::elimination::MAX_EXACT_VERTICES`] vertices the elimination-order
/// DP answers (seeded with the heuristic upper bound). Returns `None` when
/// a piece is larger still, `H` has isolated vertices, or `cutoff` is
/// given and `fhw(H) >= cutoff`.
pub fn fhw_exact(h: &Hypergraph, cutoff: Option<Rational>) -> Option<(Rational, Decomposition)> {
    fhw_exact_with_stats(h, cutoff, EngineOptions::default()).0
}

/// As [`fhw_exact`], also reporting engine, LP price-cache and
/// candidate-generation counters (engine counters are zero when the
/// elimination-DP fallback answered). `opts` pins the engine scheduling;
/// width, witness and stats are identical at every thread count (the
/// determinism tests compare them).
///
/// Unless opted out (`opts.prep` / `HGTOOL_NO_PREP`), the instance first
/// runs through `prep`'s minimizer pipeline: GYO-style simplification plus
/// biconnected-block splitting, each block solved independently (candidate
/// generation and the heuristic bound run per block), the width combined
/// as the maximum and the witness lifted back to `h`. With
/// `opts.reuse_prices` the `ρ*` LP prices are shared process-wide across
/// calls keyed by each block's fingerprint.
pub fn fhw_exact_with_stats(
    h: &Hypergraph,
    cutoff: Option<Rational>,
    opts: EngineOptions,
) -> (Option<(Rational, Decomposition)>, SearchStats) {
    if h.has_isolated_vertices() {
        return (None, SearchStats::default());
    }
    let _span = obs::span!(
        "solve",
        measure = "fhw",
        vertices = h.num_vertices(),
        edges = h.num_edges()
    );
    let started = std::time::Instant::now();
    let warm = solver::pool_is_warm();
    let key = format!(
        "cutoff={cutoff:?};prep={};rp={};backend=auto",
        opts.prep, opts.reuse_prices
    );
    let reuse = opts.reuse_results && !opts.speculate;
    let (result, mut stats) = prep::cached_query(h, "result-fhw", key, reuse, || {
        prep::run_minimizer(h, opts.prep, |block| fhw_piece(block, cutoff.clone(), opts))
    });
    stats.pool_reuse = usize::from(warm);
    solve_metrics::latency().observe_us(started.elapsed().as_micros() as u64);
    (result, stats)
}

/// Process-lifetime solve metrics, observational only.
mod solve_metrics {
    use obs::metrics::{histogram_with_buckets, Histogram, DEFAULT_LATENCY_BUCKETS_S};
    use std::sync::{Arc, OnceLock};

    /// `hgtool_solve_latency_seconds{strategy="fhw"}`.
    pub(super) fn latency() -> &'static Arc<Histogram> {
        static H: OnceLock<Arc<Histogram>> = OnceLock::new();
        H.get_or_init(|| {
            // Explicit bucket config: the µs-scale default grid,
            // spelled out here so re-tuning is a one-line change.
            histogram_with_buckets(
                "hgtool_solve_latency_seconds",
                "End-to-end exact width-solve latency by strategy",
                &[("strategy", "fhw")],
                &DEFAULT_LATENCY_BUCKETS_S,
            )
        })
    }
}

/// Computes `fhw(H)` via the elimination-order DP alone (no engine
/// search): every preprocessed block must fit
/// [`ghd::elimination::MAX_EXACT_VERTICES`], else the whole call returns
/// `None`. This is the portfolio's `elim` backend; on mid-size instances
/// whose subset space stalls the engine, the DP's `n^2 · 2^n` schedule is
/// the faster exact path.
pub fn fhw_exact_elimination_with_stats(
    h: &Hypergraph,
    cutoff: Option<Rational>,
    opts: EngineOptions,
) -> (Option<(Rational, Decomposition)>, SearchStats) {
    if h.has_isolated_vertices() {
        return (None, SearchStats::default());
    }
    let key = format!(
        "cutoff={cutoff:?};prep={};rp={};backend=elim",
        opts.prep, opts.reuse_prices
    );
    let reuse = opts.reuse_results && !opts.speculate;
    prep::cached_query(h, "result-fhw", key, reuse, || {
        prep::run_minimizer(h, opts.prep, |block| {
            if block.num_vertices() > ghd::elimination::MAX_EXACT_VERTICES {
                return (None, SearchStats::default());
            }
            let mut stats = SearchStats::default();
            let result = fhw_by_elimination(block, cutoff.clone(), &mut stats);
            (result, stats)
        })
    })
}

/// Computes the heuristic upper bound on `fhw(H)` (min-degree / min-fill
/// elimination orderings plus local search, bags priced by `ρ*`) together
/// with its witness FHD — no exact search. This is the bound that seeds
/// [`fhw_exact`]'s cutoff; `hgtool widths --heuristic-only` surfaces it
/// directly. Returns `None` only for empty or isolated-vertex inputs.
pub fn fhw_upper_bound(h: &Hypergraph) -> Option<(Rational, Decomposition)> {
    fhw_upper_bound_with_stats(h, EngineOptions::default()).0
}

/// As [`fhw_upper_bound`] with explicit options (preprocessing still
/// applies: bounds are computed per reduced block and the witness is
/// stitched and lifted like any exact result).
pub fn fhw_upper_bound_with_stats(
    h: &Hypergraph,
    opts: EngineOptions,
) -> (Option<(Rational, Decomposition)>, SearchStats) {
    if h.num_vertices() == 0 || h.has_isolated_vertices() {
        return (None, SearchStats::default());
    }
    prep::run_minimizer(h, opts.prep, |block| {
        let mut ctx = PricingContext::new();
        let (ub, d) = candgen::upper_bound(block, rho_star_price(block, &mut ctx));
        let lp = ctx.stats();
        let stats = SearchStats {
            ub_width: Some(ub.clone()),
            lp_pivots: lp.pivots,
            lp_warm_starts: lp.warm_starts,
            lp_cold_solves: lp.cold_solves,
            ..SearchStats::default()
        };
        (Some((ub, d)), stats)
    })
}

/// The subset-bag cross-check oracle: the pre-candgen search proposing
/// every bag `conn ⊆ B ⊆ conn ∪ C`, kept as an independent certification
/// path for the hybrid engine (routine use up to
/// [`solver::MAX_SUBSET_ORACLE_VERTICES`] vertices; hard-gated at
/// [`solver::MAX_SUBSET_SEARCH_VERTICES`]). Runs without preprocessing or
/// heuristic seeding.
pub fn fhw_exact_subset_oracle(
    h: &Hypergraph,
    cutoff: Option<Rational>,
) -> Option<(Rational, Decomposition)> {
    if h.has_isolated_vertices() || h.num_vertices() > solver::MAX_SUBSET_SEARCH_VERTICES {
        return None;
    }
    let session = prep::SessionCache::open(h, "fhw-rho-star", false);
    let strategy = Arc::new(FhwSearch::new(
        h,
        cutoff,
        Arc::clone(&session.cache),
        BagMode::Subset,
    ));
    let cx = SearchContext::with_options(EngineOptions::sequential());
    cx.run(h, &strategy)
}

/// The `ρ*` bag pricer shared by the heuristic bound and its tests. The
/// elimination orderings walk neighboring bags, so the context carries
/// each solve's basis into the next (warm starts) — valid here because the
/// heuristic is strictly sequential and its bag order deterministic.
fn rho_star_price<'a>(
    h: &'a Hypergraph,
    ctx: &'a mut PricingContext,
) -> impl FnMut(&VertexSet) -> candgen::PricedBag<Rational> + 'a {
    |bag| {
        ctx.price_warm(h, bag)
            .expect("no isolated vertices, so every bag is coverable")
    }
}

/// Solves one (already preprocessed) piece: heuristic upper bound first,
/// then the hybrid engine under the seeded cutoff when the piece fits the
/// subset range, the elimination DP in the window above it, `None`
/// beyond.
fn fhw_piece(
    h: &Hypergraph,
    cutoff: Option<Rational>,
    opts: EngineOptions,
) -> (Option<(Rational, Decomposition)>, SearchStats) {
    // Tiny pieces skip the candgen apparatus entirely: with at most
    // `2^8` subset bags the plain engine is already optimal, and the
    // heuristic seed (let alone the prefix) cannot pay for its own
    // computation. This keeps the toy-corpus fhw columns at their
    // pre-candgen timings exactly.
    if h.num_vertices() < PREFIX_MIN_VERTICES {
        let session = prep::SessionCache::open(h, "fhw-rho-star", opts.reuse_prices);
        let strategy = Arc::new(FhwSearch::new(
            h,
            cutoff,
            Arc::clone(&session.cache),
            BagMode::Subset,
        ));
        let cx = SearchContext::with_options(opts);
        let result = cx.run(h, &strategy).map(|(w, d)| {
            debug_assert!(d.width() <= w);
            (w, d)
        });
        let mut stats = cx.stats();
        (stats.price_hits, stats.price_misses, stats.price_warm_hits) = session.deltas();
        merge_lp(&mut stats, strategy.pool.stats());
        return (result, stats);
    }
    // The seed is the *integral* (`ρ`-priced) heuristic bound: since
    // `fhw <= ghw`, its witness — integral weights are a valid fractional
    // cover — upper-bounds `fhw` too, and branch-and-bound covers cost
    // microseconds where the `ρ*` LPs cost milliseconds (the LP-tight
    // bound is still available separately via [`fhw_upper_bound`]). A
    // looser seed only delays the gates; exactness never depends on it.
    let (ub_int, ub_witness) = candgen::upper_bound(h, |bag| {
        let c =
            cover::integral_cover(h, bag).expect("no isolated vertices, so every bag is coverable");
        let weight = c.weight();
        (
            weight,
            c.edges.into_iter().map(|e| (e, Rational::one())).collect(),
        )
    });
    let ub = Rational::from(ub_int);
    if let Some(sink) = prep::anytime::current_sink() {
        // Anytime channel: the witnessed heuristic bound is this piece's
        // first upper bound (`fhw <= ghw`, and integral weights are a
        // valid fractional cover), streamed before the search starts.
        sink.report_upper(ub.clone(), Some(&ub_witness));
    }
    let seeded = cutoff.as_ref().is_none_or(|c| ub < *c);
    let eff = if seeded {
        ub.clone()
    } else {
        cutoff.expect("unseeded")
    };
    let mut stats = SearchStats {
        ub_width: Some(ub.clone()),
        ..SearchStats::default()
    };
    let searched = if eff <= Rational::one() {
        // Every nonempty bag costs rho* >= 1, so nothing beats eff <= 1:
        // the trivial search already failed.
        Some(None)
    } else if h.num_vertices() <= solver::MAX_SUBSET_SEARCH_VERTICES {
        // Edge-union prefix budget: `⌈eff⌉` edges (where integral-cover
        // normal forms live); completeness comes from the subset tail, so
        // the prefix is skipped outright (budget 0) whenever it would not
        // pay — on small subset spaces (the prefix is pure reordering
        // there, and the tail's smallest-first discipline is already
        // good) and whenever its union count rivals the subset space
        // itself (dense instances like cliques) or the feasibility cap.
        let subset_space = 1u64
            .checked_shl(h.num_vertices() as u32)
            .unwrap_or(u64::MAX);
        let prefix_cap = (CANDGEN_STREAM_CAP.min(subset_space)) / 4;
        let budget = if h.num_vertices() >= PREFIX_MIN_VERTICES {
            let b = eff.ceil().to_i64().unwrap_or(0).max(0) as usize;
            if candgen::stream_size_bound(h.num_edges(), b, prefix_cap) < prefix_cap {
                b
            } else {
                0
            }
        } else {
            0
        };
        let session = prep::SessionCache::open(h, "fhw-rho-star", opts.reuse_prices);
        let strategy = Arc::new(FhwSearch::new(
            h,
            Some(eff),
            Arc::clone(&session.cache),
            BagMode::Hybrid(
                // The subset tail completes the space, so the prefix can
                // take the adaptive per-state cap: states whose union
                // bound outgrows their own subset space skip straight to
                // the tail (counted as `cand_cap_hits`).
                candgen::EdgeUnionConfig::with_budget(budget)
                    .with_per_state_cap(CANDGEN_STREAM_CAP),
            ),
        ));
        let cx = SearchContext::with_options(opts);
        let result = cx.run(h, &strategy);
        let engine = cx.stats();
        stats.merge(&engine);
        (stats.price_hits, stats.price_misses, stats.price_warm_hits) = session.deltas();
        stats.cand_generated = strategy.counters.generated();
        stats.cand_filtered = strategy.counters.filtered();
        stats.cand_cap_hits = strategy.counters.cap_hits();
        merge_lp(&mut stats, strategy.pool.stats());
        Some(result)
    } else if h.num_vertices() <= ghd::elimination::MAX_EXACT_VERTICES {
        Some(fhw_by_elimination(h, Some(eff), &mut stats))
    } else {
        None
    };
    let result = match searched {
        Some(Some((w, d))) => {
            debug_assert!(d.width() <= w);
            Some((w, d))
        }
        // The search below `eff` is complete, so failing it pins the width
        // to exactly `ub` when the cutoff was ours.
        Some(None) if seeded => {
            debug_assert!(ub_witness.width() <= ub);
            Some((ub, ub_witness))
        }
        _ => None,
    };
    (result, stats)
}

/// Folds a workspace's LP counters into the search stats.
fn merge_lp(stats: &mut SearchStats, lp: lp::LpStats) {
    stats.lp_pivots += lp.pivots;
    stats.lp_warm_starts += lp.warm_starts;
    stats.lp_cold_solves += lp.cold_solves;
}

/// The pre-engine elimination-order DP, the fallback for pieces between
/// the subset range and 24 vertices. The DP visits bags in a deterministic
/// sequential order, so one warm pricing context serves the whole run.
fn fhw_by_elimination(
    h: &Hypergraph,
    cutoff: Option<Rational>,
    stats: &mut SearchStats,
) -> Option<(Rational, Decomposition)> {
    let mut ctx = PricingContext::new();
    let searched = ghd::elimination::optimal_elimination(
        h,
        |bag| {
            // The DP runs outside the engine's cancellation scopes, so it
            // polls the ambient token itself on its hot path.
            if prep::anytime::interrupted() {
                prep::anytime::interrupt::raise();
            }
            ctx.price_warm(h, bag)
                .expect("no isolated vertices, so every bag is coverable")
                .0
        },
        cutoff,
    );
    let result = searched.map(|(width, order)| {
        let d = ghd::elimination::assemble(h, &order, |bag| {
            ctx.price_warm(h, bag).expect("coverable").1
        });
        debug_assert!(d.width() <= width);
        (width, d)
    });
    merge_lp(stats, ctx.stats());
    result
}

/// Which candidate-bag space the strategy streams.
enum BagMode {
    /// The `candgen` edge-union prefix followed by the (deduplicated)
    /// subset tail — the primary, exact path.
    Hybrid(candgen::EdgeUnionConfig),
    /// The full subset space alone — the cross-check oracle.
    Subset,
}

/// The exact-`fhw` strategy: candidate bags priced by `rho*` through the
/// shared concurrent LP price cache.
struct FhwSearch {
    cutoff: Option<Rational>,
    /// `rank(H)`: counting coverage gives `rho*(bag) >= |bag| / rank`, the
    /// lower bound that gates the LP against the engine bound.
    rank: usize,
    /// Scattered-set lower bound (pairwise non-adjacent bag vertices each
    /// force a unit of cover weight) — the sharpest of the pre-LP gates.
    scatter: cover::ScatterBound,
    /// `bag -> (rho*(bag), optimal weights)` — the LP is admission's
    /// dominant cost and bags repeat across search states and worker
    /// threads; each distinct bag is priced once per search (once per
    /// *process* when the session is backed by the cross-call registry).
    cover_cache: Arc<RhoStarCache>,
    /// Pooled simplex workspaces pricing cache misses through the packing
    /// dual — one context per in-flight solve, buffers reused across bags
    /// and workers. Solves are cold (per-bag-pure), so the pooled pivot
    /// totals are schedule-independent.
    pool: PricingPool,
    /// Candidate space (hybrid on the primary path, subsets on the
    /// oracle).
    bags: BagMode,
    /// Generated/filtered tallies of the edge-union prefix streams.
    counters: candgen::Counters,
}

impl FhwSearch {
    /// A strategy over `h` with the given candidate space: derived fields
    /// (rank, scattered-set bound, gate memo, counters) are uniform across
    /// the oracle, the tiny-piece fast path and the hybrid engine.
    fn new(
        h: &Hypergraph,
        cutoff: Option<Rational>,
        cover_cache: Arc<RhoStarCache>,
        bags: BagMode,
    ) -> Self {
        FhwSearch {
            cutoff,
            rank: properties::rank(h),
            scatter: cover::ScatterBound::new(h),
            cover_cache,
            pool: PricingPool::new(),
            bags,
            counters: candgen::Counters::new(),
        }
    }

    /// Per-edge-coverage rejection thresholds under `bound`, for the
    /// per-state gate closure (admission recomputes single entries through
    /// [`threshold`] instead — per candidate, a `Vec` would be the hot
    /// path's only allocation).
    fn thresholds(&self, bound: &Rational) -> Vec<usize> {
        (0..=self.rank).map(|r| threshold(bound, r)).collect()
    }
}

/// The smallest `|bag|` the bound gate rejects when at most `r` bag
/// vertices fit in one edge: `max(1, ⌈bound · r⌉)` (exact at integers).
/// Runs on the per-candidate hot path, so the small-rational case is pure
/// integer arithmetic — no allocation, no locks.
fn threshold(bound: &Rational, r: usize) -> usize {
    if let Some((n, d)) = bound.as_small() {
        // Widths are positive, so `n >= 0` and plain ceiling division is
        // exact; `i128` cannot overflow from reduced `i64` parts.
        let t = ((n as i128) * (r as i128) + (d as i128) - 1).div_euclid(d as i128);
        t.clamp(1, usize::MAX as i128) as usize
    } else {
        let t = (bound * &Rational::from(r))
            .ceil()
            .to_i64()
            .unwrap_or(i64::MAX);
        t.max(1) as usize
    }
}

/// `len >= threshold(bound, r)` as one cross-multiplication: for nonempty
/// bags (`len >= 1`) the ceiling never needs computing — `len ≥ ⌈n·r/d⌉ ⟺
/// len·d ≥ n·r`. This replaces a division with a multiply on the gate
/// every streamed candidate hits.
#[inline]
fn exceeds(bound: &Rational, r: usize, len: usize) -> bool {
    if let Some((n, d)) = bound.as_small() {
        (len as i128) * (d as i128) >= (n as i128) * (r as i128)
    } else {
        len >= threshold(bound, r)
    }
}

impl WidthSolver for FhwSearch {
    type Cost = Rational;

    fn is_decision(&self) -> bool {
        false
    }

    fn cutoff(&self) -> Option<Rational> {
        self.cutoff.clone()
    }

    fn candidates<'a>(&'a self, h: &'a Hypergraph, state: SearchState<'a>) -> CandidateStream<'a> {
        let cfg = match &self.bags {
            BagMode::Subset => return solver::stream_subset_bags(state),
            // A zero prefix budget (small subset space, or an infeasible
            // union count) degrades to the plain subset stream — skip the
            // prefix plumbing (restriction pool, dedup set) entirely.
            BagMode::Hybrid(cfg) if cfg.max_edges == 0 => return solver::stream_subset_bags(state),
            BagMode::Hybrid(cfg) => cfg,
        };
        // The rank/scatter pre-pricing gates, hoisted into the generator
        // against the static seeded cutoff (admission re-applies them
        // against the tighter running bound). A gated union reappears in
        // the subset tail, where admission rejects it just as cheaply.
        let thresholds = self.cutoff.as_ref().map(|b| self.thresholds(b));
        let rank = self.rank;
        let scatter = &self.scatter;
        let gate = move |bag: &VertexSet| match &thresholds {
            Some(t) => bag.len() < t[rank] && !scatter.at_least(bag, t[1.min(rank)]),
            None => true,
        };
        let mut prefix = Some(candgen::edge_union_bags(
            h,
            state.comp,
            state.conn,
            cfg,
            &self.counters,
            gate,
        ));
        let mut seen: Vec<VertexSet> = Vec::new();
        let mut tail: Option<CandidateStream<'a>> = None;
        CandidateStream::new(std::iter::from_fn(move || {
            // Stream the edge-union prefix first, remembering its bags so
            // the completing subset tail never re-streams one. The tail
            // is only built once the prefix is dry — `seen` is complete
            // then, and becomes the tail's precompiled skip list (no
            // per-candidate dedup lookups).
            if let Some(p) = prefix.as_mut() {
                if let Some(bag) = p.next() {
                    seen.push(bag.clone());
                    return Some(Guess {
                        edges: Vec::new(),
                        extra: bag,
                    });
                }
                prefix = None;
            }
            tail.get_or_insert_with(|| {
                solver::stream_subset_bags_excluding(state, &std::mem::take(&mut seen))
            })
            .next()
        }))
    }

    fn admit(
        &self,
        h: &Hypergraph,
        _state: SearchState<'_>,
        guess: &Guess,
        bound: Option<&Rational>,
    ) -> Option<Admission<Rational>> {
        let bag = &guess.extra;
        // Bound gates ahead of everything: a cover's total coverage gives
        // rho*(bag) >= |bag| / r where r bounds how many bag vertices one
        // edge covers; a bag whose bound is already at the engine bound
        // can neither beat it nor survive the cost check, so it dies here
        // — no LP, no cache traffic, no admission construction. The cheap
        // global-rank gate runs first; survivors pay one O(edges) scan for
        // the per-bag rank, which is far sharper on sparse instances.
        // Candidate streams order cheap bags first, so a cheap
        // decomposition tightens both gates early.
        if let Some(b) = bound {
            // The scatter threshold `⌈b·1⌉` is division-free on the small
            // rational path (`at_least_ratio` cross-multiplies instead of
            // paying a 128-bit division per candidate).
            if exceeds(b, self.rank, bag.len())
                || match b.as_small() {
                    Some((n, d)) if n > 0 && self.rank >= 1 => {
                        self.scatter.at_least_ratio(bag, n, d)
                    }
                    _ => self.scatter.at_least(bag, threshold(b, 1.min(self.rank))),
                }
                // The O(edges) per-bag rank only sharpens the global gate
                // when rank > 2: at rank <= 2 its r = 1 case is the
                // scattered bound's independent-bag case.
                || (self.rank > 2 && exceeds(b, cover::bag_rank(h, bag).min(self.rank), bag.len()))
            {
                return None;
            }
        }
        let (weight, weights) = cover::rho_star_priced_with(h, bag, &self.cover_cache, &self.pool)?;
        Some(Admission {
            split: bag.clone(),
            bag: bag.clone(),
            cost: weight,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use decomp::validate;
    use hypergraph::generators;

    fn assert_fhw(h: &Hypergraph, expected: Rational) {
        let (w, d) = fhw_exact(h, None).expect("in range");
        assert_eq!(w, expected);
        assert_eq!(validate::validate_fhd(h, &d), Ok(()), "{}", d.render(h));
        assert!(d.width() <= expected);
    }

    #[test]
    fn triangle_is_three_halves() {
        assert_fhw(&generators::cycle(3), rat(3, 2));
    }

    #[test]
    fn longer_cycles_are_2() {
        for n in 4..8 {
            assert_fhw(&generators::cycle(n), rat(2, 1));
        }
    }

    #[test]
    fn cliques_are_half_n() {
        // Lemma 2.3 (and its odd extension): fhw(K_m) = m/2.
        for m in 3..7i64 {
            assert_fhw(&generators::clique(m as usize), rat(m, 2));
        }
    }

    #[test]
    fn acyclic_is_1() {
        assert_fhw(&generators::path(6), rat(1, 1));
        assert_fhw(&generators::cq_chain(4, 3, 1), rat(1, 1));
    }

    #[test]
    fn example_4_3_fhw_is_2() {
        // fhw <= ghw = 2, and the 4-clique-free structure still forces 2
        // (H0 is cyclic with only small edges).
        let h = generators::example_4_3();
        let (w, _) = fhw_exact(&h, None).unwrap();
        assert!(w > Rational::one());
        assert!(w <= rat(2, 1));
    }

    #[test]
    fn nineteen_plus_vertices_reach_the_dp_window_seeded() {
        // 20 vertices: the elimination DP answers, its cutoff seeded by
        // the heuristic bound (which is tight here, so the DP only has to
        // refute an improvement — formerly an unseeded 2^20 sweep).
        let h = generators::cycle(20);
        let (w, d) = fhw_exact(&h, None).expect("DP window");
        assert_eq!(w, rat(2, 1));
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
    }

    #[test]
    fn hierarchy_fhw_le_ghw_le_hw() {
        // Lemma-level sanity across engines on a mixed corpus.
        for seed in 0..4u64 {
            let h = generators::random_bip(8, 6, 2, 3, seed);
            let (fhw, _) = fhw_exact(&h, None).unwrap();
            let (ghw, _) = ghd::ghw_exact(&h, None).unwrap();
            let hw = hd::hypertree_width(&h, 6).map(|(w, _)| w).unwrap();
            assert!(fhw <= Rational::from(ghw), "seed {seed}");
            assert!(ghw <= hw, "seed {seed}");
            // Adler-Gottlob-Grohe: hw <= 3*ghw + 1.
            assert!(hw <= 3 * ghw + 1, "seed {seed}");
        }
    }

    #[test]
    fn lemma_2_7_monotone_under_induced_subhypergraphs() {
        let h = generators::example_4_3();
        let (whole, _) = fhw_exact(&h, None).unwrap();
        // Drop two vertices; fhw must not increase.
        let mut w = h.all_vertices();
        w.remove(0);
        w.remove(5);
        let (sub, _, _) = h.induced(&w);
        if !sub.has_isolated_vertices() {
            let (part, _) = fhw_exact(&sub, None).unwrap();
            assert!(part <= whole);
        }
    }

    #[test]
    fn cutoff_certifies_lower_bound() {
        let h = generators::cycle(3);
        assert!(fhw_exact(&h, Some(rat(3, 2))).is_none());
        assert_eq!(fhw_exact(&h, Some(rat(2, 1))).unwrap().0, rat(3, 2));
    }

    #[test]
    fn subset_oracle_agrees_with_the_hybrid_engine() {
        let corpus = vec![
            generators::cycle(3),
            generators::cycle(6),
            generators::clique(5),
            generators::triangle_chain(2),
            generators::example_5_1(4),
        ];
        for h in corpus {
            let primary = fhw_exact(&h, None).map(|(w, _)| w);
            let oracle = fhw_exact_subset_oracle(&h, None).map(|(w, _)| w);
            assert_eq!(primary, oracle, "engine vs subset oracle on {h:?}");
        }
    }

    #[test]
    fn upper_bound_is_witnessed_and_sound() {
        for h in [
            generators::cycle(3),
            generators::clique(5),
            generators::example_5_1(4),
            generators::example_4_3(),
        ] {
            let (ub, d) = fhw_upper_bound(&h).expect("valid instance");
            let (exact, _) = fhw_exact(&h, None).expect("small");
            assert!(ub >= exact, "ub {ub} < exact {exact} on {h:?}");
            assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
            assert!(d.width() <= ub);
        }
    }

    #[test]
    fn engine_agrees_with_elimination_dp_baseline() {
        // Certify the shared-engine search against the independent
        // elimination-order DP kept in `ghd::elimination`.
        let corpus = vec![
            generators::cycle(3),
            generators::cycle(6),
            generators::clique(5),
            generators::triangle_chain(2),
            generators::example_4_3(),
            generators::example_5_1(4),
        ];
        for h in corpus {
            let engine = fhw_exact(&h, None).map(|(w, _)| w);
            let dp = ghd::elimination::optimal_elimination(
                &h,
                |bag| cover::fractional_cover(&h, bag).expect("coverable").weight,
                None,
            )
            .map(|(w, _)| w);
            assert_eq!(engine, dp, "engine vs elimination DP on {h:?}");
        }
    }
}
