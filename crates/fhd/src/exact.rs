//! Exact `fhw` baseline, expressed as a minimizing strategy over the shared
//! [`solver`] engine: candidate bags are all sets `conn ⊆ B ⊆ conn ∪ C`
//! priced by the fractional edge cover number `rho*(B)` (computed by exact
//! LP). Widths are exact rationals — e.g. `fhw(C3) = 3/2` comes out as the
//! literal fraction.

use arith::Rational;
use cover::{RhoStarCache, ShardedCache};
use decomp::Decomposition;
use hypergraph::{properties, Hypergraph};
use solver::{
    Admission, CandidateStream, EngineOptions, Guess, SearchContext, SearchState, SearchStats,
    WidthSolver,
};
use std::sync::Arc;

/// Computes `fhw(H)` exactly together with an optimal FHD.
///
/// Instances up to [`solver::MAX_SUBSET_SEARCH_VERTICES`] vertices run on
/// the shared-engine subset search; between that and
/// [`ghd::elimination::MAX_EXACT_VERTICES`] vertices (where the subset
/// enumeration is infeasible) the legacy elimination-order DP answers
/// instead. Returns `None` when `H` is larger still, has isolated
/// vertices, or `cutoff` is given and `fhw(H) >= cutoff`.
pub fn fhw_exact(h: &Hypergraph, cutoff: Option<Rational>) -> Option<(Rational, Decomposition)> {
    fhw_exact_with_stats(h, cutoff, EngineOptions::default()).0
}

/// As [`fhw_exact`], also reporting engine and LP price-cache counters
/// (all-zero when the elimination-DP fallback answered). `opts` pins the
/// engine scheduling; width, witness and stats are identical at every
/// thread count (the determinism tests compare them).
///
/// Unless opted out (`opts.prep` / `HGTOOL_NO_PREP`), the instance first
/// runs through `prep`'s minimizer pipeline: GYO-style simplification plus
/// biconnected-block splitting, each block solved independently (the
/// per-block vertex counts — not the original's — are what the
/// [`solver::MAX_SUBSET_SEARCH_VERTICES`] gate sees), the width combined
/// as the maximum and the witness lifted back to `h`. With
/// `opts.reuse_prices` the `ρ*` LP prices are shared process-wide across
/// calls keyed by each block's fingerprint.
pub fn fhw_exact_with_stats(
    h: &Hypergraph,
    cutoff: Option<Rational>,
    opts: EngineOptions,
) -> (Option<(Rational, Decomposition)>, SearchStats) {
    if h.has_isolated_vertices() {
        return (None, SearchStats::default());
    }
    if !prep::enabled(opts.prep) {
        return fhw_piece(h, cutoff, opts);
    }
    let prepared = prep::prepare(h, prep::Profile::Minimizer);
    let mut stats = SearchStats {
        prep_vertices_removed: prepared.stats.vertices_removed,
        prep_edges_removed: prepared.stats.edges_removed,
        prep_blocks: prepared.stats.blocks,
        ..SearchStats::default()
    };
    let mut parts = Vec::with_capacity(prepared.blocks.len());
    let mut best: Option<Rational> = None;
    for block in &prepared.blocks {
        let (result, s) = fhw_piece(&block.hypergraph, cutoff.clone(), opts);
        stats.merge(&s);
        let Some((w, d)) = result else {
            // Too large for the exact engines, or the cutoff bit: either
            // way the whole instance answers `None` (width = max of block
            // widths).
            return (None, stats);
        };
        if best.as_ref().is_none_or(|b| w > *b) {
            best = Some(w);
        }
        parts.push(d);
    }
    let width = best.expect("at least one block");
    let d = prepared.lift(parts);
    debug_assert!(d.width() <= width);
    (Some((width, d)), stats)
}

/// Solves one (already preprocessed) piece: the shared-engine subset
/// search when small enough, the elimination DP in the 19–24-vertex
/// window, `None` beyond.
fn fhw_piece(
    h: &Hypergraph,
    cutoff: Option<Rational>,
    opts: EngineOptions,
) -> (Option<(Rational, Decomposition)>, SearchStats) {
    if h.num_vertices() > solver::MAX_SUBSET_SEARCH_VERTICES {
        return (fhw_by_elimination(h, cutoff), SearchStats::default());
    }
    let session = prep::SessionCache::open(h, "fhw-rho-star", opts.reuse_prices);
    let strategy = FhwSearch {
        cutoff,
        rank: properties::rank(h),
        scatter: cover::ScatterBound::new(h),
        cover_cache: Arc::clone(&session.cache),
        gate: ShardedCache::new(),
    };
    let cx = SearchContext::with_options(opts);
    let result = cx.run(h, &strategy).map(|(width, d)| {
        debug_assert!(d.width() <= width);
        (width, d)
    });
    let mut stats = cx.stats();
    (stats.price_hits, stats.price_misses, stats.price_warm_hits) = session.deltas();
    (result, stats)
}

/// The pre-engine implementation, kept for 19–24-vertex instances.
fn fhw_by_elimination(
    h: &Hypergraph,
    cutoff: Option<Rational>,
) -> Option<(Rational, Decomposition)> {
    let (width, order) = ghd::elimination::optimal_elimination(
        h,
        |bag| {
            cover::fractional_cover(h, bag)
                .expect("no isolated vertices, so every bag is coverable")
                .weight
        },
        cutoff,
    )?;
    let d = ghd::elimination::assemble(h, &order, |bag| {
        let c = cover::fractional_cover(h, bag).expect("coverable");
        c.weights
            .into_iter()
            .enumerate()
            .filter(|(_, w)| !w.is_zero())
            .collect()
    });
    debug_assert!(d.width() <= width);
    Some((width, d))
}

/// The exact-`fhw` strategy: subset bags priced by `rho*` through the
/// shared concurrent LP price cache.
struct FhwSearch {
    cutoff: Option<Rational>,
    /// `rank(H)`: counting coverage gives `rho*(bag) >= |bag| / rank`, the
    /// lower bound that gates the LP against the engine bound.
    rank: usize,
    /// Scattered-set lower bound (pairwise non-adjacent bag vertices each
    /// force a unit of cover weight) — the sharpest of the pre-LP gates.
    scatter: cover::ScatterBound,
    /// `bag -> (rho*(bag), optimal weights)` — the LP is admission's
    /// dominant cost and bags repeat across search states and worker
    /// threads; each distinct bag is priced once per search (once per
    /// *process* when the session is backed by the cross-call registry).
    cover_cache: Arc<RhoStarCache>,
    /// Memoized integer form of the bound gate, keyed by the bound:
    /// `thresholds[r]` is the smallest `|bag|` rejected when at most `r`
    /// bag vertices fit in one edge (`⌈bound · r⌉`, exact at integers).
    /// Bounds alternate between parent and child states along the
    /// recursion, so this is a real (small, sharded) map rather than a
    /// one-slot memo — only a handful of distinct bounds ever occur.
    gate: ShardedCache<Rational, Vec<usize>>,
}

impl FhwSearch {
    /// Per-edge-coverage rejection thresholds under `bound`.
    fn thresholds(&self, bound: &Rational) -> Vec<usize> {
        self.gate.get_or_insert_with(bound, || {
            (0..=self.rank)
                .map(|r| {
                    let product = bound * &Rational::from(r);
                    let floor = product.floor().to_i64().unwrap_or(i64::MAX).max(0) as usize;
                    let t = if Rational::from(floor) == product {
                        floor
                    } else {
                        floor + 1
                    };
                    t.max(1)
                })
                .collect()
        })
    }
}

impl WidthSolver for FhwSearch {
    type Cost = Rational;

    fn is_decision(&self) -> bool {
        false
    }

    fn cutoff(&self) -> Option<Rational> {
        self.cutoff.clone()
    }

    fn candidates<'a>(&'a self, _h: &'a Hypergraph, state: SearchState<'a>) -> CandidateStream<'a> {
        solver::stream_subset_bags(state)
    }

    fn admit(
        &self,
        h: &Hypergraph,
        _state: SearchState<'_>,
        guess: &Guess,
        bound: Option<&Rational>,
    ) -> Option<Admission<Rational>> {
        let bag = &guess.extra;
        // Bound gates ahead of everything: a cover's total coverage gives
        // rho*(bag) >= |bag| / r where r bounds how many bag vertices one
        // edge covers; a bag whose bound is already at the engine bound
        // can neither beat it nor survive the cost check, so it dies here
        // — no LP, no cache traffic, no admission construction. The cheap
        // global-rank gate runs first; survivors pay one O(edges) scan for
        // the per-bag rank, which is far sharper on sparse instances.
        // Subset bags stream smallest first, so a cheap decomposition
        // tightens both gates early.
        if let Some(b) = bound {
            let t = self.thresholds(b);
            if bag.len() >= t[self.rank]
                || self.scatter.lower_bound(bag) >= t[1.min(self.rank)]
                // The O(edges) per-bag rank only sharpens the global gate
                // when rank > 2: at rank <= 2 its r = 1 case is the
                // scattered bound's independent-bag case.
                || (self.rank > 2 && bag.len() >= t[cover::bag_rank(h, bag).min(self.rank)])
            {
                return None;
            }
        }
        let (weight, weights) = cover::rho_star_priced(h, bag, &self.cover_cache)?;
        Some(Admission {
            split: bag.clone(),
            bag: bag.clone(),
            cost: weight,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use decomp::validate;
    use hypergraph::generators;

    fn assert_fhw(h: &Hypergraph, expected: Rational) {
        let (w, d) = fhw_exact(h, None).expect("small instance");
        assert_eq!(w, expected);
        assert_eq!(validate::validate_fhd(h, &d), Ok(()), "{}", d.render(h));
        assert!(d.width() <= expected);
    }

    #[test]
    fn triangle_is_three_halves() {
        assert_fhw(&generators::cycle(3), rat(3, 2));
    }

    #[test]
    fn longer_cycles_are_2() {
        for n in 4..8 {
            assert_fhw(&generators::cycle(n), rat(2, 1));
        }
    }

    #[test]
    fn cliques_are_half_n() {
        // Lemma 2.3 (and its odd extension): fhw(K_m) = m/2.
        for m in 3..7i64 {
            assert_fhw(&generators::clique(m as usize), rat(m, 2));
        }
    }

    #[test]
    fn acyclic_is_1() {
        assert_fhw(&generators::path(6), rat(1, 1));
        assert_fhw(&generators::cq_chain(4, 3, 1), rat(1, 1));
    }

    #[test]
    fn example_4_3_fhw_is_2() {
        // fhw <= ghw = 2, and the 4-clique-free structure still forces 2
        // (H0 is cyclic with only small edges).
        let h = generators::example_4_3();
        let (w, _) = fhw_exact(&h, None).unwrap();
        assert!(w > Rational::one());
        assert!(w <= rat(2, 1));
    }

    #[test]
    fn hierarchy_fhw_le_ghw_le_hw() {
        // Lemma-level sanity across engines on a mixed corpus.
        for seed in 0..4u64 {
            let h = generators::random_bip(8, 6, 2, 3, seed);
            let (fhw, _) = fhw_exact(&h, None).unwrap();
            let (ghw, _) = ghd::ghw_exact(&h, None).unwrap();
            let hw = hd::hypertree_width(&h, 6).map(|(w, _)| w).unwrap();
            assert!(fhw <= Rational::from(ghw), "seed {seed}");
            assert!(ghw <= hw, "seed {seed}");
            // Adler-Gottlob-Grohe: hw <= 3*ghw + 1.
            assert!(hw <= 3 * ghw + 1, "seed {seed}");
        }
    }

    #[test]
    fn lemma_2_7_monotone_under_induced_subhypergraphs() {
        let h = generators::example_4_3();
        let (whole, _) = fhw_exact(&h, None).unwrap();
        // Drop two vertices; fhw must not increase.
        let mut w = h.all_vertices();
        w.remove(0);
        w.remove(5);
        let (sub, _, _) = h.induced(&w);
        if !sub.has_isolated_vertices() {
            let (part, _) = fhw_exact(&sub, None).unwrap();
            assert!(part <= whole);
        }
    }

    #[test]
    fn cutoff_certifies_lower_bound() {
        let h = generators::cycle(3);
        assert!(fhw_exact(&h, Some(rat(3, 2))).is_none());
        assert_eq!(fhw_exact(&h, Some(rat(2, 1))).unwrap().0, rat(3, 2));
    }

    #[test]
    fn engine_agrees_with_elimination_dp_baseline() {
        // Certify the shared-engine search against the independent
        // elimination-order DP kept in `ghd::elimination`.
        let corpus = vec![
            generators::cycle(3),
            generators::cycle(6),
            generators::clique(5),
            generators::triangle_chain(2),
            generators::example_4_3(),
            generators::example_5_1(4),
        ];
        for h in corpus {
            let engine = fhw_exact(&h, None).map(|(w, _)| w);
            let dp = ghd::elimination::optimal_elimination(
                &h,
                |bag| cover::fractional_cover(&h, bag).expect("coverable").weight,
                None,
            )
            .map(|(w, _)| w);
            assert_eq!(engine, dp, "engine vs elimination DP on {h:?}");
        }
    }
}
