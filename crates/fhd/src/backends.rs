//! The fractional members of the width-backend portfolio: `fhw`,
//! `frac-decomp` and `strict-hd` [`Backend`]s.
//!
//! Every backend reuses the corresponding `_with_stats` path, so a
//! backend's answer is byte-identical to calling that path directly and
//! concurrent identical runs dedup through the result cache (note the
//! `;backend=` slot in the cache keys).
//!
//! `fhw` mirrors the `ghw` quartet: `engine` (hybrid prefix + subset
//! tail, DP fallback), `elim` (elimination DP alone, ≤ 24 vertices),
//! `oracle` (subset enumeration, small instances), `seed-refine`
//! (witnessed heuristic bound first, exact tail dedup'd onto `engine`).
//!
//! The decisions field two members each. `frac-decomp`: `engine` (the
//! prepped default) and `noprep` — the raw Algorithm 3, whose *reject*
//! maps to [`Outcome::unresolved`] because acceptance is one-sided
//! monotone under preprocessing (prep can accept where the raw
//! `c`-relative completeness gives up, so only the prepped reject is the
//! measure's canonical "no"). `strict-hd`: `engine` and `legacy` (the
//! pre-engine recursion kept as the agreement oracle).

use crate::bdp::{check_fhd_bdp_legacy, check_fhd_bdp_with_stats, FhdAnswer};
use crate::exact::{
    fhw_exact_elimination_with_stats, fhw_exact_subset_oracle, fhw_exact_with_stats,
    fhw_upper_bound_with_stats,
};
use crate::frac_decomp::{frac_decomp_with_stats, FracDecompParams};
use crate::subedges::HdkParams;
use arith::Rational;
use decomp::Decomposition;
use hypergraph::Hypergraph;
use solver::backend::{Backend, BackendId, Measure, Outcome, RunCtl, WidthRequest};
use solver::SearchStats;

/// The `fhw` portfolio, in admission order.
pub fn fhw_backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(FhwEngine),
        Box::new(FhwSeedRefine),
        Box::new(FhwElimination),
        Box::new(FhwSubsetOracle),
    ]
}

/// The `frac-decomp` portfolio.
pub fn frac_decomp_backends() -> Vec<Box<dyn Backend>> {
    vec![Box::new(FracEngine), Box::new(FracNoPrep)]
}

/// The `strict-hd` portfolio.
pub fn strict_hd_backends() -> Vec<Box<dyn Backend>> {
    vec![Box::new(StrictEngine), Box::new(StrictLegacy)]
}

fn fhw_cutoff(req: &WidthRequest) -> Option<Rational> {
    match &req.measure {
        Measure::Fhw { cutoff } => cutoff.clone(),
        m => unreachable!("fhw backend asked for {m:?}"),
    }
}

fn frac_params(req: &WidthRequest) -> FracDecompParams {
    match &req.measure {
        Measure::FracDecomp { k, eps, c } => FracDecompParams {
            k: k.clone(),
            eps: eps.clone(),
            c: *c,
        },
        m => unreachable!("frac-decomp backend asked for {m:?}"),
    }
}

fn strict_params(req: &WidthRequest) -> (Rational, HdkParams) {
    match &req.measure {
        Measure::StrictHd {
            k,
            union_arity,
            max_subedges,
        } => (
            k.clone(),
            HdkParams {
                union_arity: *union_arity,
                max_subedges: *max_subedges,
            },
        ),
        m => unreachable!("strict-hd backend asked for {m:?}"),
    }
}

/// `(width, witness)` minimizer answer → [`Outcome`] (shared with the
/// `ghw` quartet's logic: `None` certifies "> cutoff" when one was set).
fn outcome_of(
    id: BackendId,
    bounded: bool,
    result: Option<(Rational, Decomposition)>,
    stats: SearchStats,
) -> Outcome {
    match result {
        Some((w, d)) => Outcome::exact(id, w, d, stats),
        None if bounded => Outcome::certified_no(id, stats),
        None => Outcome::unresolved(id, stats),
    }
}

struct FhwEngine;

impl Backend for FhwEngine {
    fn id(&self) -> BackendId {
        "engine"
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
        let cutoff = fhw_cutoff(req);
        let bounded = cutoff.is_some();
        let (result, stats) = fhw_exact_with_stats(h, cutoff, req.opts);
        outcome_of(self.id(), bounded, result, stats)
    }
}

struct FhwElimination;

impl Backend for FhwElimination {
    fn id(&self) -> BackendId {
        "elim"
    }

    fn eligible(&self, h: &Hypergraph, _req: &WidthRequest) -> bool {
        h.num_vertices() <= ghd::elimination::MAX_EXACT_VERTICES
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
        let cutoff = fhw_cutoff(req);
        let bounded = cutoff.is_some();
        let (result, stats) = fhw_exact_elimination_with_stats(h, cutoff, req.opts);
        outcome_of(self.id(), bounded, result, stats)
    }
}

struct FhwSubsetOracle;

impl Backend for FhwSubsetOracle {
    fn id(&self) -> BackendId {
        "oracle"
    }

    fn eligible(&self, h: &Hypergraph, _req: &WidthRequest) -> bool {
        h.num_vertices() <= solver::MAX_SUBSET_ORACLE_VERTICES
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
        let cutoff = fhw_cutoff(req);
        let bounded = cutoff.is_some();
        let reuse = req.opts.reuse_results && !req.opts.speculate;
        let key = format!("cutoff={cutoff:?};backend=oracle");
        let (result, stats) = prep::cached_query(h, "result-fhw", key, reuse, || {
            (fhw_exact_subset_oracle(h, cutoff), SearchStats::default())
        });
        outcome_of(self.id(), bounded, result, stats)
    }
}

struct FhwSeedRefine;

impl Backend for FhwSeedRefine {
    fn id(&self) -> BackendId {
        "seed-refine"
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, ctl: &RunCtl) -> Outcome {
        let cutoff = fhw_cutoff(req);
        let bounded = cutoff.is_some();
        // Phase 1: the LP-tight witnessed heuristic bound, reported
        // immediately.
        let (seed, mut stats) = fhw_upper_bound_with_stats(h, req.opts);
        if let Some((ub, d)) = &seed {
            ctl.sink.report_upper(ub.clone(), Some(d));
            if *ub == Rational::one() {
                // fhw >= 1 always: a width-1 witness is already exact.
                let (ub, d) = seed.expect("present");
                return Outcome::exact(self.id(), ub, d, stats);
            }
        }
        // Phase 2: the full exact path (dedups onto in-flight `engine`).
        let (result, s) = fhw_exact_with_stats(h, cutoff, req.opts);
        stats.merge(&s);
        outcome_of(self.id(), bounded, result, stats)
    }
}

struct FracEngine;

impl Backend for FracEngine {
    fn id(&self) -> BackendId {
        "engine"
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
        let params = frac_params(req);
        let (result, stats) = frac_decomp_with_stats(h, &params, req.opts);
        match result {
            Some(d) => Outcome::accepted(self.id(), d, stats),
            None => Outcome::certified_no(self.id(), stats),
        }
    }
}

struct FracNoPrep;

impl Backend for FracNoPrep {
    fn id(&self) -> BackendId {
        "noprep"
    }

    fn eligible(&self, _h: &Hypergraph, req: &WidthRequest) -> bool {
        // With prep off the two members coincide; racing them would just
        // burn a pool slot on a duplicate.
        req.opts.prep
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
        let params = frac_params(req);
        let opts = solver::EngineOptions {
            prep: false,
            ..req.opts
        };
        let (result, stats) = frac_decomp_with_stats(h, &params, opts);
        match result {
            Some(d) => Outcome::accepted(self.id(), d, stats),
            // The raw reject is only `c`-relative *for this instance*
            // (prep may still accept), so it certifies nothing.
            None => Outcome::unresolved(self.id(), stats),
        }
    }
}

struct StrictEngine;

impl Backend for StrictEngine {
    fn id(&self) -> BackendId {
        "engine"
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
        let (k, params) = strict_params(req);
        let (answer, stats) = check_fhd_bdp_with_stats(h, &k, params, req.opts);
        match answer {
            FhdAnswer::Yes(d) => Outcome::accepted(self.id(), *d, stats),
            FhdAnswer::No => Outcome::certified_no(self.id(), stats),
            FhdAnswer::Unknown => Outcome::unresolved(self.id(), stats),
        }
    }
}

struct StrictLegacy;

impl Backend for StrictLegacy {
    fn id(&self) -> BackendId {
        "legacy"
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
        let (k, params) = strict_params(req);
        if h.has_isolated_vertices() || !k.is_positive() {
            return Outcome::certified_no(self.id(), SearchStats::default());
        }
        match check_fhd_bdp_legacy(h, &k, params) {
            FhdAnswer::Yes(d) => Outcome::accepted(self.id(), *d, SearchStats::default()),
            FhdAnswer::No => Outcome::certified_no(self.id(), SearchStats::default()),
            FhdAnswer::Unknown => Outcome::unresolved(self.id(), SearchStats::default()),
        }
    }
}
