//! Algorithm 4: `FHW-Approximation` — the polynomial-time *absolute*
//! approximation scheme (PTAAS, Theorem 6.20) for
//! `K-Bounded-FHW-Optimization`. Binary search over the width, driven by
//! any `find-fhd(H, k, ε)` oracle with the Theorem 6.1 contract:
//! *if `fhw(H) <= k`, return an FHD of width `<= k + ε`; otherwise it may
//! fail*.

use arith::Rational;
use decomp::Decomposition;
use hypergraph::Hypergraph;

/// The outcome of [`fhw_approximation`].
#[derive(Clone, Debug)]
pub struct PtaasResult {
    /// The FHD found, of width `<= fhw(H) + ε`.
    pub decomposition: Decomposition,
    /// The width of the returned FHD.
    pub width: Rational,
    /// The final lower bound `L` (so `fhw(H) ∈ [L, width]`).
    pub lower_bound: Rational,
    /// Oracle invocations inside the loop (excludes the initial probe).
    pub iterations: usize,
}

/// Algorithm 4. `oracle(h, k, eps)` must satisfy the find-fhd contract.
/// Returns `None` iff `fhw(H) > K` (the initial probe fails).
pub fn fhw_approximation<F>(
    h: &Hypergraph,
    big_k: &Rational,
    eps: &Rational,
    mut oracle: F,
) -> Option<PtaasResult>
where
    F: FnMut(&Hypergraph, &Rational, &Rational) -> Option<Decomposition>,
{
    assert!(eps.is_positive(), "ε must be positive");
    // Check upper bound.
    let mut best = oracle(h, big_k, eps)?;
    // Initialization.
    let mut low = Rational::one();
    let mut high = big_k + eps;
    let eps_prime = eps / &Rational::from(3usize);
    let mut iterations = 0usize;
    // Main computation.
    while &high - &low >= *eps {
        let mid = &low + &((&high - &low) / &Rational::from(2usize));
        iterations += 1;
        match oracle(h, &mid, &eps_prime) {
            Some(d) => {
                high = &mid + &eps_prime;
                best = d;
            }
            None => {
                low = mid;
            }
        }
    }
    let width = best.width();
    Some(PtaasResult {
        decomposition: best,
        width,
        lower_bound: low,
        iterations,
    })
}

/// The iteration bound proved for Theorem 6.20:
/// `m = ⌈log2(K'/ε')⌉ (+O(1))` with `K' = K + ε − 1`, `ε' = ε/3`.
pub fn predicted_iterations(big_k: &Rational, eps: &Rational) -> usize {
    let kp = big_k + eps - Rational::one();
    let ep = eps / &Rational::from(3usize);
    if !kp.is_positive() {
        return 0;
    }
    let ratio = (&kp / &ep).to_f64();
    ratio.log2().ceil().max(0.0) as usize
}

/// An *exact* oracle built from the shared-engine `fhw` search: returns an
/// optimal FHD whenever `fhw(H) <= k` (satisfying the find-fhd contract
/// with any ε). Only valid for small instances.
pub fn exact_oracle(h: &Hypergraph, k: &Rational, _eps: &Rational) -> Option<Decomposition> {
    let (w, d) = crate::exact::fhw_exact(h, None)?;
    (w <= *k).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use decomp::validate;
    use hypergraph::generators;

    #[test]
    fn converges_to_fhw_on_triangle() {
        let h = generators::cycle(3); // fhw = 3/2
        let eps = rat(1, 4);
        let res = fhw_approximation(&h, &rat(3, 1), &eps, exact_oracle).unwrap();
        assert_eq!(validate::validate_fhd(&h, &res.decomposition), Ok(()));
        // width <= fhw + ε and fhw ∈ [L, width].
        assert!(res.width <= rat(3, 2) + eps.clone());
        assert!(res.lower_bound <= rat(3, 2));
        assert!(res.width >= rat(3, 2));
    }

    #[test]
    fn rejects_when_fhw_exceeds_big_k() {
        let h = generators::clique(6); // fhw = 3
        assert!(fhw_approximation(&h, &rat(2, 1), &rat(1, 2), exact_oracle).is_none());
    }

    #[test]
    fn iteration_count_matches_the_log_bound() {
        let h = generators::cycle(5); // fhw = 2
        for (eps_num, eps_den) in [(1i64, 2i64), (1, 4), (1, 8)] {
            let eps = rat(eps_num, eps_den);
            let res = fhw_approximation(&h, &rat(4, 1), &eps, exact_oracle).unwrap();
            let predicted = predicted_iterations(&rat(4, 1), &eps);
            // The proof gives convergence after ⌈log(K'/ε')⌉ iterations;
            // allow the small additive constant from the 3ε' < ε slack.
            assert!(
                res.iterations <= predicted + 3,
                "eps {eps}: {} > {}",
                res.iterations,
                predicted
            );
        }
    }

    #[test]
    fn tighter_eps_means_tighter_interval() {
        let h = generators::cycle(4); // fhw = 2
        let loose = fhw_approximation(&h, &rat(3, 1), &rat(1, 1), exact_oracle).unwrap();
        let tight = fhw_approximation(&h, &rat(3, 1), &rat(1, 8), exact_oracle).unwrap();
        let loose_gap = &loose.width - &loose.lower_bound;
        let tight_gap = &tight.width - &tight.lower_bound;
        assert!(tight_gap < loose_gap);
        assert!(tight_gap < rat(1, 8));
    }

    #[test]
    fn works_with_frac_decomp_oracle() {
        use crate::frac_decomp::{frac_decomp, FracDecompParams};
        let h = generators::cycle(3);
        let oracle = |h: &hypergraph::Hypergraph, k: &Rational, eps: &Rational| {
            frac_decomp(
                h,
                &FracDecompParams {
                    k: k.clone(),
                    eps: eps.clone(),
                    c: 3,
                },
            )
        };
        let res = fhw_approximation(&h, &rat(2, 1), &rat(1, 2), oracle).unwrap();
        assert_eq!(validate::validate_fhd(&h, &res.decomposition), Ok(()));
        assert!(res.width <= rat(2, 1)); // 3/2 + 1/2
    }
}
