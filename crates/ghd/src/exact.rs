//! Exact `ghw` baseline (exponential time, small instances only): the
//! elimination-order DP with `rho` as the bag cost. Used throughout the
//! test-suite and experiments to certify the polynomial algorithms.

use crate::elimination::{assemble, optimal_elimination};
use arith::Rational;
use decomp::Decomposition;
use hypergraph::Hypergraph;

/// Computes `ghw(H)` exactly together with an optimal GHD.
///
/// Returns `None` when `H` is too large for the subset DP (see
/// [`crate::elimination::MAX_EXACT_VERTICES`]), has isolated vertices, or
/// `cutoff` is given and `ghw(H) >= cutoff`.
pub fn ghw_exact(h: &Hypergraph, cutoff: Option<usize>) -> Option<(usize, Decomposition)> {
    if h.has_isolated_vertices() {
        return None;
    }
    let (width, order) = optimal_elimination(
        h,
        |bag| {
            cover::integral_cover(h, bag)
                .expect("no isolated vertices, so every bag is coverable")
                .weight()
        },
        cutoff,
    )?;
    let d = assemble(h, &order, |bag| {
        cover::integral_cover(h, bag)
            .expect("coverable")
            .edges
            .into_iter()
            .map(|e| (e, Rational::one()))
            .collect()
    });
    debug_assert!(d.width() <= Rational::from(width));
    Some((width, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate;
    use hypergraph::generators;

    fn assert_ghw(h: &Hypergraph, expected: usize) {
        let (w, d) = ghw_exact(h, None).expect("small instance");
        assert_eq!(w, expected);
        assert_eq!(validate::validate_ghd(h, &d), Ok(()), "{}", d.render(h));
        assert!(d.width() <= arith::Rational::from(expected));
    }

    #[test]
    fn classic_widths() {
        assert_ghw(&generators::path(6), 1);
        assert_ghw(&generators::cycle(4), 2);
        assert_ghw(&generators::cycle(7), 2);
        assert_ghw(&generators::clique(4), 2);
        assert_ghw(&generators::clique(5), 3);
        assert_ghw(&generators::triangle_chain(3), 2);
    }

    #[test]
    fn example_4_3_exact_ghw_2() {
        // Certifies the subedge-based check: ghw(H0) = 2 < hw(H0) = 3.
        assert_ghw(&generators::example_4_3(), 2);
    }

    #[test]
    fn exact_matches_bip_check_on_corpus() {
        use crate::check::{check_ghd_bip, GhdAnswer};
        use crate::subedges::SubedgeLimits;
        for seed in 0..4u64 {
            let h = generators::random_bip(9, 6, 2, 3, seed);
            let Some((w, _)) = ghw_exact(&h, None) else { continue };
            // BIP check at width w succeeds, at w-1 fails.
            assert!(
                check_ghd_bip(&h, w, SubedgeLimits::default()).is_yes(),
                "seed {seed}: BIP check should accept ghw {w}"
            );
            if w > 1 {
                assert!(
                    matches!(
                        check_ghd_bip(&h, w - 1, SubedgeLimits::default()),
                        GhdAnswer::No
                    ),
                    "seed {seed}: BIP check should reject width {}",
                    w - 1
                );
            }
        }
    }

    #[test]
    fn cutoff_detects_lower_bounds() {
        let h = generators::clique(6); // ghw = 3
        assert!(ghw_exact(&h, Some(3)).is_none());
        assert_eq!(ghw_exact(&h, Some(4)).unwrap().0, 3);
    }
}
