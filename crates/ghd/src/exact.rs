//! Exact `ghw` baseline (exponential time, small instances only), expressed
//! as a minimizing strategy over the shared [`solver`] engine: candidate
//! bags are *all* sets `conn ⊆ B ⊆ conn ∪ C` priced by the edge cover
//! number `rho(B)`. Since any tree decomposition normalizes to this
//! `(component, connector)` form and `ghw` is the minimum over tree
//! decompositions of the maximum bag `rho`, the search is exact. Used
//! throughout the test-suite and experiments to certify the polynomial
//! algorithms.

use arith::Rational;
use cover::RhoCache;
use decomp::Decomposition;
use hypergraph::{properties, Hypergraph};
use solver::{
    Admission, CandidateStream, EngineOptions, Guess, SearchContext, SearchState, SearchStats,
    WidthSolver,
};
use std::sync::Arc;

pub use solver::MAX_SUBSET_SEARCH_VERTICES;

/// Computes `ghw(H)` exactly together with an optimal GHD.
///
/// Instances up to [`solver::MAX_SUBSET_SEARCH_VERTICES`] vertices run on
/// the shared-engine subset search; between that and
/// [`crate::elimination::MAX_EXACT_VERTICES`] vertices (where the subset
/// enumeration is infeasible) the legacy elimination-order DP answers
/// instead. Returns `None` when `H` is larger still, has isolated
/// vertices, or `cutoff` is given and `ghw(H) >= cutoff`.
pub fn ghw_exact(h: &Hypergraph, cutoff: Option<usize>) -> Option<(usize, Decomposition)> {
    ghw_exact_with_stats(h, cutoff, EngineOptions::default()).0
}

/// As [`ghw_exact`], also reporting engine and price-cache counters
/// (all-zero when the elimination-DP fallback answered). `opts` pins the
/// engine scheduling; the reported stats are identical at every thread
/// count (the determinism tests compare them).
pub fn ghw_exact_with_stats(
    h: &Hypergraph,
    cutoff: Option<usize>,
    opts: EngineOptions,
) -> (Option<(usize, Decomposition)>, SearchStats) {
    if h.has_isolated_vertices() {
        return (None, SearchStats::default());
    }
    if !prep::enabled(opts.prep) {
        return ghw_piece(h, cutoff, opts);
    }
    // The minimizer pipeline: GYO-style simplification, then biconnected
    // blocks solved independently (the subset-search vertex gate applies
    // per block), width = max, witness stitched and lifted back to `h`.
    let prepared = prep::prepare(h, prep::Profile::Minimizer);
    let mut stats = SearchStats {
        prep_vertices_removed: prepared.stats.vertices_removed,
        prep_edges_removed: prepared.stats.edges_removed,
        prep_blocks: prepared.stats.blocks,
        ..SearchStats::default()
    };
    let mut parts = Vec::with_capacity(prepared.blocks.len());
    let mut best: Option<usize> = None;
    for block in &prepared.blocks {
        let (result, s) = ghw_piece(&block.hypergraph, cutoff, opts);
        stats.merge(&s);
        let Some((w, d)) = result else {
            return (None, stats);
        };
        if best.is_none_or(|b| w > b) {
            best = Some(w);
        }
        parts.push(d);
    }
    let width = best.expect("at least one block");
    let d = prepared.lift(parts);
    debug_assert!(d.width() <= Rational::from(width));
    (Some((width, d)), stats)
}

/// Solves one (already preprocessed) piece: shared-engine subset search
/// when small enough, elimination DP in the 19–24-vertex window, `None`
/// beyond.
fn ghw_piece(
    h: &Hypergraph,
    cutoff: Option<usize>,
    opts: EngineOptions,
) -> (Option<(usize, Decomposition)>, SearchStats) {
    if h.num_vertices() > solver::MAX_SUBSET_SEARCH_VERTICES {
        return (ghw_by_elimination(h, cutoff), SearchStats::default());
    }
    let session = prep::SessionCache::open(h, "ghw-rho", opts.reuse_prices);
    let strategy = GhwSearch {
        cutoff,
        rank: properties::rank(h),
        scatter: cover::ScatterBound::new(h),
        cover_cache: Arc::clone(&session.cache),
    };
    let cx = SearchContext::with_options(opts);
    let result = cx.run(h, &strategy).map(|(width, d)| {
        debug_assert!(d.width() <= Rational::from(width));
        (width, d)
    });
    let mut stats = cx.stats();
    (stats.price_hits, stats.price_misses, stats.price_warm_hits) = session.deltas();
    (result, stats)
}

/// The pre-engine implementation, kept for 19–24-vertex instances.
fn ghw_by_elimination(h: &Hypergraph, cutoff: Option<usize>) -> Option<(usize, Decomposition)> {
    let (width, order) = crate::elimination::optimal_elimination(
        h,
        |bag| {
            cover::integral_cover(h, bag)
                .expect("no isolated vertices, so every bag is coverable")
                .weight()
        },
        cutoff,
    )?;
    let d = crate::elimination::assemble(h, &order, |bag| {
        cover::integral_cover(h, bag)
            .expect("coverable")
            .edges
            .into_iter()
            .map(|e| (e, Rational::one()))
            .collect()
    });
    debug_assert!(d.width() <= Rational::from(width));
    Some((width, d))
}

/// The exact-`ghw` strategy: every bag between the connector and the whole
/// component, priced by `rho` through the shared concurrent cover cache.
struct GhwSearch {
    cutoff: Option<usize>,
    /// `rank(H)`: a bag needs at least `⌈|bag| / rank⌉` cover edges, the
    /// lower bound that gates branch-and-bound pricing against the engine
    /// bound.
    rank: usize,
    /// Scattered-set lower bound (pairwise non-adjacent bag vertices each
    /// force a whole cover edge) — the sharpest of the pre-pricing gates.
    scatter: cover::ScatterBound,
    /// `bag -> (rho(bag), minimum cover)` — bags repeat heavily across
    /// search states and worker threads, and the branch-and-bound cover
    /// search is the expensive part of admission. Shared process-wide
    /// when the session is backed by the cross-call registry.
    cover_cache: Arc<RhoCache>,
}

impl WidthSolver for GhwSearch {
    type Cost = usize;

    fn is_decision(&self) -> bool {
        false
    }

    fn cutoff(&self) -> Option<usize> {
        self.cutoff
    }

    fn candidates<'a>(&'a self, _h: &'a Hypergraph, state: SearchState<'a>) -> CandidateStream<'a> {
        solver::stream_subset_bags(state)
    }

    fn admit(
        &self,
        h: &Hypergraph,
        _state: SearchState<'_>,
        guess: &Guess,
        bound: Option<&usize>,
    ) -> Option<Admission<usize>> {
        let bag = &guess.extra;
        // Bound gates ahead of pricing: rho(bag) >= ceil(|bag| / r) where
        // r bounds how many bag vertices one edge covers, so once a cheap
        // decomposition is known, hopeless bags are rejected without a
        // cover search, cache traffic or admission construction. The
        // global rank runs first; survivors pay one O(edges) scan for the
        // sharper per-bag rank.
        if let Some(b) = bound {
            if bag.len().div_ceil(self.rank) >= *b {
                return None;
            }
            // Scattered-set bound: pairwise non-adjacent bag vertices each
            // force a whole cover edge of their own.
            if self.scatter.lower_bound(bag) >= *b {
                return None;
            }
            // The O(edges) per-bag rank only sharpens the global gate when
            // rank > 2: at rank <= 2 its r = 1 case is the scattered
            // bound's independent-bag case.
            if self.rank > 2 {
                let r = cover::bag_rank(h, bag);
                if r == 0 || bag.len().div_ceil(r) >= *b {
                    return None;
                }
            }
        }
        let (weight, edges) = cover::rho_priced(h, bag, &self.cover_cache)?;
        Some(Admission {
            split: bag.clone(),
            bag: bag.clone(),
            cost: weight,
            weights: edges.into_iter().map(|e| (e, Rational::one())).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate;
    use hypergraph::generators;

    fn assert_ghw(h: &Hypergraph, expected: usize) {
        let (w, d) = ghw_exact(h, None).expect("small instance");
        assert_eq!(w, expected);
        assert_eq!(validate::validate_ghd(h, &d), Ok(()), "{}", d.render(h));
        assert!(d.width() <= arith::Rational::from(expected));
    }

    #[test]
    fn classic_widths() {
        assert_ghw(&generators::path(6), 1);
        assert_ghw(&generators::cycle(4), 2);
        assert_ghw(&generators::cycle(7), 2);
        assert_ghw(&generators::clique(4), 2);
        assert_ghw(&generators::clique(5), 3);
        assert_ghw(&generators::triangle_chain(3), 2);
    }

    #[test]
    fn example_4_3_exact_ghw_2() {
        // Certifies the subedge-based check: ghw(H0) = 2 < hw(H0) = 3.
        assert_ghw(&generators::example_4_3(), 2);
    }

    #[test]
    fn exact_matches_bip_check_on_corpus() {
        use crate::check::{check_ghd_bip, GhdAnswer};
        use crate::subedges::SubedgeLimits;
        for seed in 0..4u64 {
            let h = generators::random_bip(9, 6, 2, 3, seed);
            let Some((w, _)) = ghw_exact(&h, None) else {
                continue;
            };
            // BIP check at width w succeeds, at w-1 fails.
            assert!(
                check_ghd_bip(&h, w, SubedgeLimits::default()).is_yes(),
                "seed {seed}: BIP check should accept ghw {w}"
            );
            if w > 1 {
                assert!(
                    matches!(
                        check_ghd_bip(&h, w - 1, SubedgeLimits::default()),
                        GhdAnswer::No
                    ),
                    "seed {seed}: BIP check should reject width {}",
                    w - 1
                );
            }
        }
    }

    #[test]
    fn cutoff_detects_lower_bounds() {
        let h = generators::clique(6); // ghw = 3
        assert!(ghw_exact(&h, Some(3)).is_none());
        assert_eq!(ghw_exact(&h, Some(4)).unwrap().0, 3);
    }

    #[test]
    fn engine_agrees_with_elimination_dp_baseline() {
        // The retired elimination-order DP survives as an independent
        // implementation precisely to certify the shared-engine search.
        let mut corpus = vec![
            generators::path(6),
            generators::cycle(5),
            generators::clique(5),
            generators::triangle_chain(3),
            generators::grid(3, 3),
            generators::example_4_3(),
            generators::example_5_1(4),
        ];
        for seed in 0..3u64 {
            corpus.push(generators::random_bip(9, 6, 2, 3, seed));
        }
        for h in corpus {
            let engine = ghw_exact(&h, None).map(|(w, _)| w);
            let dp = crate::elimination::optimal_elimination(
                &h,
                |bag| cover::integral_cover(&h, bag).expect("coverable").weight(),
                None,
            )
            .map(|(w, _)| w);
            assert_eq!(engine, dp, "engine vs elimination DP on {h:?}");
        }
    }
}
