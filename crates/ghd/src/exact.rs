//! Exact `ghw` baseline (exponential time, small instances only), expressed
//! as a minimizing strategy over the shared [`solver`] engine: candidate
//! bags are *all* sets `conn ⊆ B ⊆ conn ∪ C` priced by the edge cover
//! number `rho(B)`. Since any tree decomposition normalizes to this
//! `(component, connector)` form and `ghw` is the minimum over tree
//! decompositions of the maximum bag `rho`, the search is exact. Used
//! throughout the test-suite and experiments to certify the polynomial
//! algorithms.

use arith::Rational;
use decomp::Decomposition;
use hypergraph::{Hypergraph, VertexSet};
use solver::{Admission, Guess, SearchContext, SearchState, WidthSolver};
use std::collections::HashMap;

pub use solver::MAX_SUBSET_SEARCH_VERTICES;

/// Computes `ghw(H)` exactly together with an optimal GHD.
///
/// Instances up to [`solver::MAX_SUBSET_SEARCH_VERTICES`] vertices run on
/// the shared-engine subset search; between that and
/// [`crate::elimination::MAX_EXACT_VERTICES`] vertices (where the subset
/// enumeration is infeasible) the legacy elimination-order DP answers
/// instead. Returns `None` when `H` is larger still, has isolated
/// vertices, or `cutoff` is given and `ghw(H) >= cutoff`.
pub fn ghw_exact(h: &Hypergraph, cutoff: Option<usize>) -> Option<(usize, Decomposition)> {
    if h.has_isolated_vertices() {
        return None;
    }
    if h.num_vertices() > solver::MAX_SUBSET_SEARCH_VERTICES {
        return ghw_by_elimination(h, cutoff);
    }
    let mut strategy = GhwSearch {
        cutoff,
        cover_cache: HashMap::new(),
    };
    let (width, d) = SearchContext::new().run(h, &mut strategy)?;
    debug_assert!(d.width() <= Rational::from(width));
    Some((width, d))
}

/// The pre-engine implementation, kept for 19–24-vertex instances.
fn ghw_by_elimination(h: &Hypergraph, cutoff: Option<usize>) -> Option<(usize, Decomposition)> {
    let (width, order) = crate::elimination::optimal_elimination(
        h,
        |bag| {
            cover::integral_cover(h, bag)
                .expect("no isolated vertices, so every bag is coverable")
                .weight()
        },
        cutoff,
    )?;
    let d = crate::elimination::assemble(h, &order, |bag| {
        cover::integral_cover(h, bag)
            .expect("coverable")
            .edges
            .into_iter()
            .map(|e| (e, Rational::one()))
            .collect()
    });
    debug_assert!(d.width() <= Rational::from(width));
    Some((width, d))
}

/// The exact-`ghw` strategy: every bag between the connector and the whole
/// component, priced by `rho` with a [`VertexSet`]-keyed cover cache.
struct GhwSearch {
    cutoff: Option<usize>,
    /// `bag -> (rho(bag), minimum cover)` — bags repeat heavily across
    /// search states, and the branch-and-bound cover search is the
    /// expensive part of admission.
    cover_cache: HashMap<VertexSet, Option<(usize, Vec<usize>)>>,
}

impl WidthSolver for GhwSearch {
    type Cost = usize;

    fn is_decision(&self) -> bool {
        false
    }

    fn cutoff(&self) -> Option<usize> {
        self.cutoff
    }

    fn propose(&mut self, _h: &Hypergraph, state: &SearchState<'_>) -> Vec<Guess> {
        solver::propose_subset_bags(state)
    }

    fn admit(
        &mut self,
        h: &Hypergraph,
        _state: &SearchState<'_>,
        guess: &Guess,
    ) -> Option<Admission<usize>> {
        let bag = &guess.extra;
        let (weight, edges) = self
            .cover_cache
            .entry(bag.clone())
            .or_insert_with(|| cover::integral_cover(h, bag).map(|c| (c.weight(), c.edges)))
            .clone()?;
        Some(Admission {
            split: bag.clone(),
            bag: bag.clone(),
            cost: weight,
            weights: edges.into_iter().map(|e| (e, Rational::one())).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate;
    use hypergraph::generators;

    fn assert_ghw(h: &Hypergraph, expected: usize) {
        let (w, d) = ghw_exact(h, None).expect("small instance");
        assert_eq!(w, expected);
        assert_eq!(validate::validate_ghd(h, &d), Ok(()), "{}", d.render(h));
        assert!(d.width() <= arith::Rational::from(expected));
    }

    #[test]
    fn classic_widths() {
        assert_ghw(&generators::path(6), 1);
        assert_ghw(&generators::cycle(4), 2);
        assert_ghw(&generators::cycle(7), 2);
        assert_ghw(&generators::clique(4), 2);
        assert_ghw(&generators::clique(5), 3);
        assert_ghw(&generators::triangle_chain(3), 2);
    }

    #[test]
    fn example_4_3_exact_ghw_2() {
        // Certifies the subedge-based check: ghw(H0) = 2 < hw(H0) = 3.
        assert_ghw(&generators::example_4_3(), 2);
    }

    #[test]
    fn exact_matches_bip_check_on_corpus() {
        use crate::check::{check_ghd_bip, GhdAnswer};
        use crate::subedges::SubedgeLimits;
        for seed in 0..4u64 {
            let h = generators::random_bip(9, 6, 2, 3, seed);
            let Some((w, _)) = ghw_exact(&h, None) else {
                continue;
            };
            // BIP check at width w succeeds, at w-1 fails.
            assert!(
                check_ghd_bip(&h, w, SubedgeLimits::default()).is_yes(),
                "seed {seed}: BIP check should accept ghw {w}"
            );
            if w > 1 {
                assert!(
                    matches!(
                        check_ghd_bip(&h, w - 1, SubedgeLimits::default()),
                        GhdAnswer::No
                    ),
                    "seed {seed}: BIP check should reject width {}",
                    w - 1
                );
            }
        }
    }

    #[test]
    fn cutoff_detects_lower_bounds() {
        let h = generators::clique(6); // ghw = 3
        assert!(ghw_exact(&h, Some(3)).is_none());
        assert_eq!(ghw_exact(&h, Some(4)).unwrap().0, 3);
    }

    #[test]
    fn engine_agrees_with_elimination_dp_baseline() {
        // The retired elimination-order DP survives as an independent
        // implementation precisely to certify the shared-engine search.
        let mut corpus = vec![
            generators::path(6),
            generators::cycle(5),
            generators::clique(5),
            generators::triangle_chain(3),
            generators::grid(3, 3),
            generators::example_4_3(),
            generators::example_5_1(4),
        ];
        for seed in 0..3u64 {
            corpus.push(generators::random_bip(9, 6, 2, 3, seed));
        }
        for h in corpus {
            let engine = ghw_exact(&h, None).map(|(w, _)| w);
            let dp = crate::elimination::optimal_elimination(
                &h,
                |bag| cover::integral_cover(&h, bag).expect("coverable").weight(),
                None,
            )
            .map(|(w, _)| w);
            assert_eq!(engine, dp, "engine vs elimination DP on {h:?}");
        }
    }
}
