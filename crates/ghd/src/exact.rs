//! Exact `ghw` baseline, expressed as a minimizing strategy over the shared
//! [`solver`] engine.
//!
//! Candidate bags come from the `candgen` edge-union generator: every GHD
//! of width `< b` normalizes so each bag is a component-restricted union
//! of `< b` edges (bag-maximal normal form), so with the witness-backed
//! heuristic upper bound `ub` seeding the cutoff the engine only ever
//! enumerates unions of at most `ub - 1` edges — `O(m^k)` in the edge
//! count instead of the old `O(2^n)` subset space, which is what pushed
//! the exact range past the 18-vertex wall. A search that fails at the
//! seeded cutoff *is* the exact answer `ub`, certified by the heuristic
//! witness. The subset enumerator survives as
//! [`ghw_exact_subset_oracle`], the small-instance cross-check; the
//! elimination DP remains the fallback when the edge-union space is
//! infeasible (dense instances with large `ub`).

use arith::Rational;
use cover::RhoCache;
use decomp::Decomposition;
use hypergraph::{properties, Hypergraph, VertexSet};
use solver::{
    Admission, CandidateStream, EngineOptions, Guess, SearchContext, SearchState, SearchStats,
    WidthSolver,
};
use std::sync::Arc;

pub use solver::MAX_SUBSET_SEARCH_VERTICES;

/// Edge-union feasibility cap (shared with the `fhw` engine through
/// `candgen`): the engine path runs only when the per-state enumeration
/// (`Σ C(m, i)` for `i <= ub - 1`) stays below this many unions; beyond
/// it the elimination DP answers instead.
const CANDGEN_STREAM_CAP: u64 = candgen::DEFAULT_STREAM_CAP;

/// Computes `ghw(H)` exactly together with an optimal GHD.
///
/// The edge-union engine serves any instance whose candidate space is
/// feasible under the heuristic bound (no vertex gate); infeasible pieces
/// fall back to the elimination DP up to
/// [`crate::elimination::MAX_EXACT_VERTICES`] vertices. Returns `None`
/// when a piece is larger still, `H` has isolated vertices, or `cutoff`
/// is given and `ghw(H) >= cutoff`.
pub fn ghw_exact(h: &Hypergraph, cutoff: Option<usize>) -> Option<(usize, Decomposition)> {
    ghw_exact_with_stats(h, cutoff, EngineOptions::default()).0
}

/// As [`ghw_exact`], also reporting engine, price-cache and
/// candidate-generation counters (engine counters are zero when the
/// elimination-DP fallback answered). `opts` pins the engine scheduling;
/// the reported stats are identical at every thread count (the
/// determinism tests compare them).
pub fn ghw_exact_with_stats(
    h: &Hypergraph,
    cutoff: Option<usize>,
    opts: EngineOptions,
) -> (Option<(usize, Decomposition)>, SearchStats) {
    if h.has_isolated_vertices() {
        return (None, SearchStats::default());
    }
    let _span = obs::span!(
        "solve",
        measure = "ghw",
        vertices = h.num_vertices(),
        edges = h.num_edges()
    );
    let started = std::time::Instant::now();
    let warm = solver::pool_is_warm();
    let key = format!(
        "cutoff={cutoff:?};prep={};rp={};backend=auto",
        opts.prep, opts.reuse_prices
    );
    let reuse = opts.reuse_results && !opts.speculate;
    let (result, mut stats) = prep::cached_query(h, "result-ghw", key, reuse, || {
        // The minimizer pipeline: GYO-style simplification, then
        // biconnected blocks solved independently (candidate generation
        // and the heuristic bound run per block), width = max, witness
        // stitched and lifted.
        prep::run_minimizer(h, opts.prep, |block| ghw_piece(block, cutoff, opts))
    });
    stats.pool_reuse = usize::from(warm);
    solve_metrics::latency().observe_us(started.elapsed().as_micros() as u64);
    (result, stats)
}

/// Process-lifetime solve metrics, observational only.
mod solve_metrics {
    use obs::metrics::{histogram_with_buckets, Histogram, DEFAULT_LATENCY_BUCKETS_S};
    use std::sync::{Arc, OnceLock};

    /// `hgtool_solve_latency_seconds{strategy="ghw"}`.
    pub(super) fn latency() -> &'static Arc<Histogram> {
        static H: OnceLock<Arc<Histogram>> = OnceLock::new();
        H.get_or_init(|| {
            // Explicit bucket config: the µs-scale default grid,
            // spelled out here so re-tuning is a one-line change.
            histogram_with_buckets(
                "hgtool_solve_latency_seconds",
                "End-to-end exact width-solve latency by strategy",
                &[("strategy", "ghw")],
                &DEFAULT_LATENCY_BUCKETS_S,
            )
        })
    }
}

/// The elimination-order DP as a standalone exact path (the `elim`
/// portfolio backend): the same minimizer pipeline as
/// [`ghw_exact_with_stats`] but every block answered by the DP directly —
/// no heuristic seed, no engine search. Exact up to
/// [`crate::elimination::MAX_EXACT_VERTICES`] vertices per reduced block;
/// a larger block returns `None`.
pub fn ghw_exact_elimination_with_stats(
    h: &Hypergraph,
    cutoff: Option<usize>,
    opts: EngineOptions,
) -> (Option<(usize, Decomposition)>, SearchStats) {
    if h.has_isolated_vertices() {
        return (None, SearchStats::default());
    }
    let key = format!(
        "cutoff={cutoff:?};prep={};rp={};backend=elim",
        opts.prep, opts.reuse_prices
    );
    let reuse = opts.reuse_results && !opts.speculate;
    prep::cached_query(h, "result-ghw", key, reuse, || {
        prep::run_minimizer(h, opts.prep, |block| {
            if block.num_vertices() > crate::elimination::MAX_EXACT_VERTICES {
                return (None, SearchStats::default());
            }
            (ghw_by_elimination(block, cutoff), SearchStats::default())
        })
    })
}

/// Computes the heuristic upper bound on `ghw(H)` (min-degree / min-fill
/// elimination orderings plus local search, bags priced by `ρ`) together
/// with its witness GHD — no exact search. This is the bound that seeds
/// [`ghw_exact`]'s cutoff; `hgtool widths --heuristic-only` surfaces it
/// directly. Returns `None` only for empty or isolated-vertex inputs.
pub fn ghw_upper_bound(h: &Hypergraph) -> Option<(usize, Decomposition)> {
    ghw_upper_bound_with_stats(h, EngineOptions::default()).0
}

/// As [`ghw_upper_bound`] with explicit options (preprocessing still
/// applies: bounds are computed per reduced block and the witness is
/// stitched and lifted like any exact result).
pub fn ghw_upper_bound_with_stats(
    h: &Hypergraph,
    opts: EngineOptions,
) -> (Option<(usize, Decomposition)>, SearchStats) {
    if h.num_vertices() == 0 || h.has_isolated_vertices() {
        return (None, SearchStats::default());
    }
    prep::run_minimizer(h, opts.prep, |block| {
        let (ub, d) = candgen::upper_bound(block, rho_price(block));
        let stats = SearchStats {
            ub_width: Some(Rational::from(ub)),
            ..SearchStats::default()
        };
        (Some((ub, d)), stats)
    })
}

/// The subset-bag cross-check oracle: the pre-candgen search proposing
/// every bag `conn ⊆ B ⊆ conn ∪ C`, kept as an independent certification
/// path for the edge-union engine (routine use up to
/// [`solver::MAX_SUBSET_ORACLE_VERTICES`] vertices; hard-gated at
/// [`MAX_SUBSET_SEARCH_VERTICES`]). Runs without preprocessing or
/// heuristic seeding, so it shares nothing with the primary path beyond
/// the engine itself.
pub fn ghw_exact_subset_oracle(
    h: &Hypergraph,
    cutoff: Option<usize>,
) -> Option<(usize, Decomposition)> {
    if h.has_isolated_vertices() || h.num_vertices() > MAX_SUBSET_SEARCH_VERTICES {
        return None;
    }
    let session = prep::SessionCache::open(h, "ghw-rho", false);
    let strategy = Arc::new(GhwSearch::new(
        h,
        cutoff,
        Arc::clone(&session.cache),
        BagMode::Subset,
    ));
    let cx = SearchContext::with_options(EngineOptions::sequential());
    cx.run(h, &strategy)
}

/// The `ρ` bag pricer shared by the heuristic bound and its tests.
fn rho_price(h: &Hypergraph) -> impl FnMut(&VertexSet) -> candgen::PricedBag<usize> + '_ {
    |bag| {
        let c =
            cover::integral_cover(h, bag).expect("no isolated vertices, so every bag is coverable");
        let weight = c.weight();
        (
            weight,
            c.edges.into_iter().map(|e| (e, Rational::one())).collect(),
        )
    }
}

/// Solves one (already preprocessed) piece: heuristic upper bound first,
/// then the edge-union engine under the seeded cutoff when feasible, the
/// elimination DP otherwise, `None` when both are out of range.
fn ghw_piece(
    h: &Hypergraph,
    cutoff: Option<usize>,
    opts: EngineOptions,
) -> (Option<(usize, Decomposition)>, SearchStats) {
    // One price session for the whole piece: the heuristic bound prices
    // its elimination bags through the same `ρ` cache the engine then
    // searches with, so the seed's covers are warm capital, not overhead.
    let session = prep::SessionCache::open(h, "ghw-rho", opts.reuse_prices);
    let (ub, ub_witness) = candgen::upper_bound(h, |bag| {
        let (weight, edges) = cover::rho_priced(h, bag, &session.cache)
            .expect("no isolated vertices, so every bag is coverable");
        (
            weight,
            edges.into_iter().map(|e| (e, Rational::one())).collect(),
        )
    });
    // The heuristic bound is witness-backed: surface it on the anytime
    // channel before the exact search starts (the ambient sink lifts the
    // block-local witness to the original instance, or drops it on
    // multi-block splits).
    if let Some(sink) = prep::anytime::current_sink() {
        sink.report_upper(Rational::from(ub), Some(&ub_witness));
    }
    // The search only has to beat `eff`: a failure at a *seeded* cutoff
    // (`ub` tighter than the caller's) is the exact answer `ub`, certified
    // by the heuristic witness in hand.
    let seeded = cutoff.is_none_or(|c| ub < c);
    let eff = if seeded {
        ub
    } else {
        cutoff.expect("unseeded")
    };
    let mut stats = SearchStats {
        ub_width: Some(Rational::from(ub)),
        ..SearchStats::default()
    };
    // Any GHD of width < eff normalizes to unions of < eff edges.
    let budget = eff.saturating_sub(1);
    let feasible = budget >= 1
        && candgen::stream_size_bound(h.num_edges(), budget, CANDGEN_STREAM_CAP)
            < CANDGEN_STREAM_CAP;
    let searched = if budget == 0 {
        // Nothing beats width 1; the trivial search already failed.
        Some(None)
    } else if feasible {
        let strategy = Arc::new(GhwSearch::new(
            h,
            Some(eff),
            Arc::clone(&session.cache),
            BagMode::EdgeUnion(candgen::EdgeUnionConfig::with_budget(budget)),
        ));
        let cx = SearchContext::with_options(opts);
        let result = cx.run(h, &strategy);
        let engine = cx.stats();
        stats.merge(&engine);
        (stats.price_hits, stats.price_misses, stats.price_warm_hits) = session.deltas();
        stats.cand_generated = strategy.counters.generated();
        stats.cand_filtered = strategy.counters.filtered();
        Some(result)
    } else if h.num_vertices() <= crate::elimination::MAX_EXACT_VERTICES {
        Some(ghw_by_elimination(h, Some(eff)))
    } else {
        // No exact engine in range: `ub` stays an upper bound only.
        None
    };
    let result = match searched {
        Some(Some((w, d))) => {
            debug_assert!(d.width() <= Rational::from(w));
            Some((w, d))
        }
        // The search is complete below `eff`, so failing it pins the
        // width to exactly `ub` when the cutoff was ours.
        Some(None) if seeded => {
            debug_assert!(ub_witness.width() <= Rational::from(ub));
            Some((ub, ub_witness))
        }
        _ => None,
    };
    (result, stats)
}

/// The pre-engine elimination-order DP, the fallback for pieces whose
/// edge-union space is infeasible (up to 24 vertices).
fn ghw_by_elimination(h: &Hypergraph, cutoff: Option<usize>) -> Option<(usize, Decomposition)> {
    let (width, order) = crate::elimination::optimal_elimination(
        h,
        |bag| {
            // The DP never enters the engine, so poll the ambient anytime
            // token here (no-op outside portfolio/deadline runs).
            if prep::anytime::interrupted() {
                prep::anytime::interrupt::raise();
            }
            cover::integral_cover(h, bag)
                .expect("no isolated vertices, so every bag is coverable")
                .weight()
        },
        cutoff,
    )?;
    let d = crate::elimination::assemble(h, &order, |bag| {
        cover::integral_cover(h, bag)
            .expect("coverable")
            .edges
            .into_iter()
            .map(|e| (e, Rational::one()))
            .collect()
    });
    debug_assert!(d.width() <= Rational::from(width));
    Some((width, d))
}

/// Which candidate-bag space the strategy streams.
enum BagMode {
    /// The primary `candgen` edge-union space (bag-maximal normal form).
    EdgeUnion(candgen::EdgeUnionConfig),
    /// The full subset space — the cross-check oracle.
    Subset,
}

/// The exact-`ghw` strategy: candidate bags priced by `rho` through the
/// shared concurrent cover cache.
struct GhwSearch {
    cutoff: Option<usize>,
    /// `rank(H)`: a bag needs at least `⌈|bag| / rank⌉` cover edges, the
    /// lower bound that gates branch-and-bound pricing against the engine
    /// bound.
    rank: usize,
    /// Scattered-set lower bound (pairwise non-adjacent bag vertices each
    /// force a whole cover edge) — the sharpest of the pre-pricing gates.
    scatter: cover::ScatterBound,
    /// `bag -> (rho(bag), minimum cover)` — bags repeat heavily across
    /// search states and worker threads, and the branch-and-bound cover
    /// search is the expensive part of admission. Shared process-wide
    /// when the session is backed by the cross-call registry.
    cover_cache: Arc<RhoCache>,
    /// Candidate space (edge unions on the primary path, subsets on the
    /// oracle).
    bags: BagMode,
    /// Generated/filtered tallies of the edge-union streams.
    counters: candgen::Counters,
}

impl GhwSearch {
    /// A strategy over `h` with the given candidate space: derived fields
    /// (rank, scattered-set bound, counters) are uniform across the
    /// oracle and the edge-union engine.
    fn new(
        h: &Hypergraph,
        cutoff: Option<usize>,
        cover_cache: Arc<RhoCache>,
        bags: BagMode,
    ) -> Self {
        GhwSearch {
            cutoff,
            rank: properties::rank(h),
            scatter: cover::ScatterBound::new(h),
            cover_cache,
            bags,
            counters: candgen::Counters::new(),
        }
    }
}

impl WidthSolver for GhwSearch {
    type Cost = usize;

    fn is_decision(&self) -> bool {
        false
    }

    fn cutoff(&self) -> Option<usize> {
        self.cutoff
    }

    fn candidates<'a>(&'a self, h: &'a Hypergraph, state: SearchState<'a>) -> CandidateStream<'a> {
        match &self.bags {
            BagMode::Subset => solver::stream_subset_bags(state),
            BagMode::EdgeUnion(cfg) => {
                // The rank/scatter pre-pricing gates, hoisted into the
                // generator against the static seeded cutoff (admission
                // re-applies them against the tighter running bound).
                let rank = self.rank;
                let scatter = &self.scatter;
                let bound = self.cutoff;
                let gate = move |bag: &VertexSet| match bound {
                    Some(b) => bag.len().div_ceil(rank) < b && !scatter.at_least(bag, b),
                    None => true,
                };
                CandidateStream::new(
                    candgen::edge_union_bags(h, state.comp, state.conn, cfg, &self.counters, gate)
                        .map(|bag| Guess {
                            edges: Vec::new(),
                            extra: bag,
                        }),
                )
            }
        }
    }

    fn admit(
        &self,
        h: &Hypergraph,
        _state: SearchState<'_>,
        guess: &Guess,
        bound: Option<&usize>,
    ) -> Option<Admission<usize>> {
        let bag = &guess.extra;
        // Bound gates ahead of pricing: rho(bag) >= ceil(|bag| / r) where
        // r bounds how many bag vertices one edge covers, so once a cheap
        // decomposition is known, hopeless bags are rejected without a
        // cover search, cache traffic or admission construction. The
        // global rank runs first; survivors pay one O(edges) scan for the
        // sharper per-bag rank.
        if let Some(b) = bound {
            if bag.len().div_ceil(self.rank) >= *b {
                return None;
            }
            // Scattered-set bound: pairwise non-adjacent bag vertices each
            // force a whole cover edge of their own.
            if self.scatter.at_least(bag, *b) {
                return None;
            }
            // The O(edges) per-bag rank only sharpens the global gate when
            // rank > 2: at rank <= 2 its r = 1 case is the scattered
            // bound's independent-bag case.
            if self.rank > 2 {
                let r = cover::bag_rank(h, bag);
                if r == 0 || bag.len().div_ceil(r) >= *b {
                    return None;
                }
            }
        }
        let (weight, edges) = cover::rho_priced(h, bag, &self.cover_cache)?;
        Some(Admission {
            split: bag.clone(),
            bag: bag.clone(),
            cost: weight,
            weights: edges.into_iter().map(|e| (e, Rational::one())).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate;
    use hypergraph::generators;

    fn assert_ghw(h: &Hypergraph, expected: usize) {
        let (w, d) = ghw_exact(h, None).expect("in range");
        assert_eq!(w, expected);
        assert_eq!(validate::validate_ghd(h, &d), Ok(()), "{}", d.render(h));
        assert!(d.width() <= arith::Rational::from(expected));
    }

    #[test]
    fn classic_widths() {
        assert_ghw(&generators::path(6), 1);
        assert_ghw(&generators::cycle(4), 2);
        assert_ghw(&generators::cycle(7), 2);
        assert_ghw(&generators::clique(4), 2);
        assert_ghw(&generators::clique(5), 3);
        assert_ghw(&generators::triangle_chain(3), 2);
    }

    #[test]
    fn example_4_3_exact_ghw_2() {
        // Certifies the subedge-based check: ghw(H0) = 2 < hw(H0) = 3.
        assert_ghw(&generators::example_4_3(), 2);
    }

    #[test]
    fn breaks_the_subset_vertex_wall() {
        // 26 vertices: beyond the old 18-vertex subset gate AND the
        // 24-vertex elimination-DP window — formerly a hard `None`.
        assert_ghw(&generators::cycle(26), 2);
        // 20 vertices: formerly elimination-DP territory, now engine-exact.
        assert_ghw(&generators::grid(2, 10), 2);
    }

    #[test]
    fn exact_matches_bip_check_on_corpus() {
        use crate::check::{check_ghd_bip, GhdAnswer};
        use crate::subedges::SubedgeLimits;
        for seed in 0..4u64 {
            let h = generators::random_bip(9, 6, 2, 3, seed);
            let Some((w, _)) = ghw_exact(&h, None) else {
                continue;
            };
            // BIP check at width w succeeds, at w-1 fails.
            assert!(
                check_ghd_bip(&h, w, SubedgeLimits::default()).is_yes(),
                "seed {seed}: BIP check should accept ghw {w}"
            );
            if w > 1 {
                assert!(
                    matches!(
                        check_ghd_bip(&h, w - 1, SubedgeLimits::default()),
                        GhdAnswer::No
                    ),
                    "seed {seed}: BIP check should reject width {}",
                    w - 1
                );
            }
        }
    }

    #[test]
    fn cutoff_detects_lower_bounds() {
        let h = generators::clique(6); // ghw = 3
        assert!(ghw_exact(&h, Some(3)).is_none());
        assert_eq!(ghw_exact(&h, Some(4)).unwrap().0, 3);
    }

    #[test]
    fn subset_oracle_agrees_with_the_edge_union_engine() {
        let corpus = vec![
            generators::cycle(5),
            generators::clique(5),
            generators::grid(3, 3),
            generators::example_4_3(),
            generators::triangle_chain(2),
        ];
        for h in corpus {
            let primary = ghw_exact(&h, None).map(|(w, _)| w);
            let oracle = ghw_exact_subset_oracle(&h, None).map(|(w, _)| w);
            assert_eq!(primary, oracle, "engine vs subset oracle on {h:?}");
        }
    }

    #[test]
    fn upper_bound_is_witnessed_and_sound() {
        for h in [
            generators::cycle(6),
            generators::clique(5),
            generators::grid(3, 3),
            generators::example_4_3(),
        ] {
            let (ub, d) = ghw_upper_bound(&h).expect("valid instance");
            let (exact, _) = ghw_exact(&h, None).expect("small");
            assert!(ub >= exact, "ub {ub} < exact {exact} on {h:?}");
            assert_eq!(validate::validate_ghd(&h, &d), Ok(()), "{}", d.render(&h));
            assert!(d.width() <= arith::Rational::from(ub));
        }
    }

    #[test]
    fn engine_agrees_with_elimination_dp_baseline() {
        // The retired elimination-order DP survives as an independent
        // implementation precisely to certify the shared-engine search.
        let mut corpus = vec![
            generators::path(6),
            generators::cycle(5),
            generators::clique(5),
            generators::triangle_chain(3),
            generators::grid(3, 3),
            generators::example_4_3(),
            generators::example_5_1(4),
        ];
        for seed in 0..3u64 {
            corpus.push(generators::random_bip(9, 6, 2, 3, seed));
        }
        for h in corpus {
            let engine = ghw_exact(&h, None).map(|(w, _)| w);
            let dp = crate::elimination::optimal_elimination(
                &h,
                |bag| cover::integral_cover(&h, bag).expect("coverable").weight(),
                None,
            )
            .map(|(w, _)| w);
            assert_eq!(engine, dp, "engine vs elimination DP on {h:?}");
        }
    }
}
