//! Subedge functions `f(H, k)` (Section 4).
//!
//! Theorem 4.11 shows `ghw(H) = k  iff  hw(H ∪ f(H,k)) = k` for a
//! polynomially-bounded subedge set `f(H,k)`; the witness subedges are the
//! sets `e ∩ B_u` arising in bag-maximal GHDs, characterized through
//! critical paths (Lemma 4.9) and union-of-intersection trees (Algorithm 1).
//!
//! * [`bip_subedges`] — the closed form of Theorem 4.15:
//!   `f(H,k) = ⋃_e ⋃_{e_1..e_j, j<=k} 2^(e ∩ (e_1 ∪ ... ∪ e_j))`, exact for
//!   hypergraphs with bounded intersection width.
//! * [`bmip_subedges`] — the Theorem 4.11 family for bounded
//!   *multi*-intersections: candidate sets are refined through up to `c-1`
//!   rounds of intersection with unions of `<= k` edges (the levels of the
//!   reduced ∪∩-tree), then closed under subsets where small.

use hypergraph::{Hypergraph, VertexSet};
use std::collections::HashSet;

/// Controls the subset-closure blow-up of the subedge enumeration.
#[derive(Clone, Copy, Debug)]
pub struct SubedgeLimits {
    /// Take all `2^|X|` subsets of a candidate `X` only when `|X|` is at
    /// most this (the paper's bound is `k·i` under the `i`-BIP). Larger
    /// candidates are kept whole (sound; complete whenever the bound holds).
    pub max_subset_size: usize,
    /// Hard cap on the number of generated subedges (safety valve; hitting
    /// it is reported via [`SubedgeSet::truncated`]).
    pub max_subedges: usize,
}

impl Default for SubedgeLimits {
    fn default() -> Self {
        SubedgeLimits {
            max_subset_size: 8,
            max_subedges: 2_000_000,
        }
    }
}

/// The result of a subedge computation.
#[derive(Clone, Debug)]
pub struct SubedgeSet {
    /// The new subedges (none equals an existing edge of `H`; none empty).
    pub subedges: Vec<VertexSet>,
    /// For every subedge, one originator edge of `H` containing it.
    pub originators: Vec<usize>,
    /// True iff [`SubedgeLimits::max_subedges`] cut enumeration short —
    /// completeness of the `iff` in Theorem 4.11/4.15 is then not guaranteed.
    pub truncated: bool,
}

/// The BIP subedge function of Theorem 4.15.
pub fn bip_subedges(h: &Hypergraph, k: usize, limits: SubedgeLimits) -> SubedgeSet {
    candidates_to_subedges(h, bip_candidates(h, k), limits)
}

/// Candidate maximal sets `e ∩ (e_1 ∪ ... ∪ e_j)` for `j <= k`, tagged with
/// the originator `e`.
#[allow(clippy::too_many_arguments)]
fn bip_candidates(h: &Hypergraph, k: usize) -> Vec<(VertexSet, usize)> {
    let m = h.num_edges();
    let mut out: Vec<(VertexSet, usize)> = Vec::new();
    let mut seen: HashSet<(VertexSet, usize)> = HashSet::new();
    for e in 0..m {
        // DFS over unions of up to k other edges; track the running
        // intersection with e, pruning unions that stop growing.
        fn rec(
            h: &Hypergraph,
            e: usize,
            start: usize,
            depth: usize,
            k: usize,
            cur: &VertexSet,
            seen: &mut HashSet<(VertexSet, usize)>,
            out: &mut Vec<(VertexSet, usize)>,
        ) {
            if depth == k {
                return;
            }
            for e2 in start..h.num_edges() {
                if e2 == e {
                    continue;
                }
                let mut next = cur.clone();
                let gain = h.edge(e).intersection(h.edge(e2));
                next.union_with(&gain);
                if !next.is_empty() && seen.insert((next.clone(), e)) {
                    out.push((next.clone(), e));
                }
                rec(h, e, e2 + 1, depth + 1, k, &next, seen, out);
            }
        }
        rec(h, e, 0, 0, k, &VertexSet::new(), &mut seen, &mut out);
    }
    out
}

/// The BMIP subedge family of Theorem 4.11 with `c - 1` refinement rounds
/// (the depth of the reduced ∪∩-tree `T*`): level 1 holds
/// `e ∩ B(λ_{u_1})`-shaped sets, each further level intersects with another
/// union of `<= k` edges.
pub fn bmip_subedges(h: &Hypergraph, k: usize, c: usize, limits: SubedgeLimits) -> SubedgeSet {
    assert!(c >= 2, "BMIP needs c >= 2 (c = 2 coincides with the BIP)");
    let mut level: Vec<(VertexSet, usize)> = bip_candidates(h, k);
    let mut all: Vec<(VertexSet, usize)> = level.clone();
    let mut seen: HashSet<(VertexSet, usize)> = all.iter().cloned().collect();
    for _round in 2..c {
        let mut next_level: Vec<(VertexSet, usize)> = Vec::new();
        for (x, orig) in &level {
            // Intersect x with unions of <= k edges (one refinement step).
            let mut stack: Vec<(usize, usize, VertexSet)> = vec![(0, 0, VertexSet::new())];
            while let Some((start, depth, acc)) = stack.pop() {
                if depth > 0 {
                    let refined = x.intersection(&acc);
                    if !refined.is_empty() && refined != *x && seen.insert((refined.clone(), *orig))
                    {
                        next_level.push((refined.clone(), *orig));
                        all.push((refined, *orig));
                        if all.len() > limits.max_subedges {
                            return candidates_truncated(h, all, limits);
                        }
                    }
                }
                if depth < k {
                    for e2 in start..h.num_edges() {
                        let mut acc2 = acc.clone();
                        acc2.union_with(h.edge(e2));
                        stack.push((e2 + 1, depth + 1, acc2));
                    }
                }
            }
        }
        if next_level.is_empty() {
            break;
        }
        level = next_level;
    }
    candidates_to_subedges(h, all, limits)
}

fn candidates_truncated(
    h: &Hypergraph,
    cands: Vec<(VertexSet, usize)>,
    limits: SubedgeLimits,
) -> SubedgeSet {
    let mut out = candidates_to_subedges(h, cands, limits);
    out.truncated = true;
    out
}

/// Closes candidates under subsets (where small), removes duplicates of
/// existing edges, and packages the result.
fn candidates_to_subedges(
    h: &Hypergraph,
    cands: Vec<(VertexSet, usize)>,
    limits: SubedgeLimits,
) -> SubedgeSet {
    let existing: HashSet<VertexSet> = h.edges().iter().cloned().collect();
    let mut emitted: HashSet<VertexSet> = HashSet::new();
    let mut subedges = Vec::new();
    let mut originators = Vec::new();
    let mut truncated = false;
    let mut emit = |set: VertexSet,
                    orig: usize,
                    subedges: &mut Vec<VertexSet>,
                    originators: &mut Vec<usize>|
     -> bool {
        if set.is_empty() || existing.contains(&set) || !emitted.insert(set.clone()) {
            return true;
        }
        subedges.push(set);
        originators.push(orig);
        subedges.len() < limits.max_subedges
    };
    'outer: for (cand, orig) in cands {
        let members = cand.to_vec();
        if members.len() <= limits.max_subset_size {
            // All non-empty subsets.
            for mask in 1u64..(1u64 << members.len()) {
                let subset: VertexSet = members
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &v)| v)
                    .collect();
                if !emit(subset, orig, &mut subedges, &mut originators) {
                    truncated = true;
                    break 'outer;
                }
            }
        } else if !emit(cand, orig, &mut subedges, &mut originators) {
            truncated = true;
            break 'outer;
        }
    }
    SubedgeSet {
        subedges,
        originators,
        truncated,
    }
}

/// A node of the union-of-intersections tree of Algorithm 1 (Figure 7).
#[derive(Clone, Debug)]
pub struct UoiNode {
    /// The edges whose intersection this node represents (`label(p)`).
    pub label: Vec<usize>,
    /// `int(p)`: the intersection of the labelled edges.
    pub intersection: VertexSet,
    /// Child nodes created by the splitting step.
    pub children: Vec<UoiNode>,
}

/// Algorithm 1 (“Union-of-Intersections-Tree”): given an edge `e` and a
/// critical path described by the λ-labels `lambdas[i] = λ_{u_i}`, builds
/// the ∪∩-tree whose leaves' intersections union to `e ∩ ⋂_i B(λ_{u_i})`
/// (Lemma 4.9).
pub fn union_of_intersections_tree(h: &Hypergraph, e: usize, lambdas: &[Vec<usize>]) -> UoiNode {
    let mut root = UoiNode {
        label: vec![e],
        intersection: h.edge(e).clone(),
        children: Vec::new(),
    };
    for lambda in lambdas {
        expand(h, &mut root, lambda);
    }
    root
}

fn expand(h: &Hypergraph, node: &mut UoiNode, lambda: &[usize]) {
    if node.children.is_empty() {
        // Leaf: split unless the label already meets λ_{u_i}.
        if node.label.iter().any(|e| lambda.contains(e)) {
            return;
        }
        for &le in lambda {
            let mut label = node.label.clone();
            label.push(le);
            let intersection = node.intersection.intersection(h.edge(le));
            node.children.push(UoiNode {
                label,
                intersection,
                children: Vec::new(),
            });
        }
    } else {
        for c in node.children.iter_mut() {
            expand(h, c, lambda);
        }
    }
}

impl UoiNode {
    /// The union of the leaf intersections — `e ∩ ⋂_i B(λ_{u_i})` by the
    /// distributivity argument in the proof of Theorem 4.11.
    pub fn leaf_union(&self) -> VertexSet {
        let mut out = VertexSet::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, acc: &mut VertexSet) {
        if self.children.is_empty() {
            acc.union_with(&self.intersection);
        } else {
            for c in &self.children {
                c.collect_leaves(acc);
            }
        }
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(UoiNode::size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    #[test]
    fn example_4_12_uoi_tree() {
        // The ∪∩-tree of critical path (u, u1, u*) of (u, e2) in Fig 6(b):
        // e2 ∩ (e3 ∪ e7) ∩ (e8 ∪ e2) = {v3, v9}; the second λ contains e2
        // itself so the tree stops at depth 1 with leaves {e2,e3}, {e2,e7}.
        let h = generators::example_4_3();
        let e = |n: &str| h.edge_by_name(n).unwrap();
        let tree = union_of_intersections_tree(
            &h,
            e("e2"),
            &[vec![e("e3"), e("e7")], vec![e("e8"), e("e2")]],
        );
        assert_eq!(tree.size(), 3); // root + two leaves (Figure 7)
        let expected: VertexSet = ["v3", "v9"]
            .iter()
            .map(|n| h.vertex_by_name(n).unwrap())
            .collect();
        assert_eq!(tree.leaf_union(), expected);
        // Cross-check against Lemma 4.9's closed form.
        let b1 = h.union_of_edges([e("e3"), e("e7")]);
        let b2 = h.union_of_edges([e("e8"), e("e2")]);
        let direct = h.edge(e("e2")).intersection(&b1).intersection(&b2);
        assert_eq!(tree.leaf_union(), direct);
    }

    #[test]
    fn bip_subedges_contain_the_example_4_4_repair() {
        // e2 ∩ (e3 ∪ e7) = {v3, v9} must appear in f(H0, 2).
        let h = generators::example_4_3();
        let f = bip_subedges(&h, 2, SubedgeLimits::default());
        assert!(!f.truncated);
        let target: VertexSet = ["v3", "v9"]
            .iter()
            .map(|n| h.vertex_by_name(n).unwrap())
            .collect();
        assert!(f.subedges.contains(&target));
        // Every subedge is inside its originator and not an existing edge.
        for (s, &o) in f.subedges.iter().zip(&f.originators) {
            assert!(s.is_subset(h.edge(o)));
            assert!(h.edges().iter().all(|e| e != s));
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn bip_subedge_count_obeys_theorem_4_15_bound() {
        // |f(H,k)| <= m^{k+1} * 2^{k*i}.
        let h = generators::example_4_3();
        let k = 2usize;
        let i = hypergraph::properties::intersection_width(&h);
        let m = h.num_edges();
        let f = bip_subedges(&h, k, SubedgeLimits::default());
        assert!(f.subedges.len() <= m.pow(k as u32 + 1) * 2usize.pow((k * i) as u32));
    }

    #[test]
    fn bmip_extends_bip() {
        let h = generators::example_4_3();
        let limits = SubedgeLimits::default();
        let bip: std::collections::HashSet<_> =
            bip_subedges(&h, 2, limits).subedges.into_iter().collect();
        let bmip: std::collections::HashSet<_> = bmip_subedges(&h, 2, 3, limits)
            .subedges
            .into_iter()
            .collect();
        assert!(bip.is_subset(&bmip));
    }

    #[test]
    fn truncation_is_reported() {
        let h = generators::clique(8);
        let f = bip_subedges(
            &h,
            2,
            SubedgeLimits {
                max_subset_size: 8,
                max_subedges: 3,
            },
        );
        assert!(f.truncated);
        assert!(f.subedges.len() <= 3);
    }
}
