//! Exact width computation by dynamic programming over elimination
//! orderings — the exponential-time baseline in the spirit of
//! Moll–Tazari–Thurley \[42\].
//!
//! Since the workspace's `ghw`/`fhw` engines moved onto the shared
//! [`solver`](solver) subset search, this module is retained as an
//! *independent* implementation: the cross-check tests in
//! [`crate::exact`] and `fhd::exact` certify the engine against it, and it
//! still handles instances up to [`MAX_EXACT_VERTICES`] = 24 vertices
//! (widths only, via [`optimal_elimination`]) where the subset search
//! stops at `solver::MAX_SUBSET_SEARCH_VERTICES` = 18.
//!
//! For any *monotone* bag-cost function `c` (both `rho` and `rho*` are
//! monotone under set inclusion), the minimum over all tree decompositions
//! of the maximum bag cost is attained on a decomposition whose bags are the
//! maximal cliques of a minimal triangulation of the primal graph, and every
//! minimal triangulation arises from an elimination ordering. The classic
//! `O(2^n)` subset DP over orderings is therefore exact. Edge coverage
//! (condition 1) is automatic: hyperedges are primal cliques and every tree
//! decomposition of the primal graph puts each clique inside some bag
//! (Lemma 2.8).

use decomp::{Decomposition, Node};
use hypergraph::{Hypergraph, VertexSet};
use std::collections::HashMap;

/// Maximum vertex count for the subset DP (states are `u64` masks and the
/// table has `2^n` entries).
pub const MAX_EXACT_VERTICES: usize = 24;

/// Computes `min over elimination orders of max over steps of
/// cost(bag(v, eliminated))`, together with an optimal order. `cost` must
/// be monotone; `cutoff` abandons branches whose cost already reaches it.
///
/// Returns `None` when `h` exceeds [`MAX_EXACT_VERTICES`] or every order
/// hits the cutoff.
pub fn optimal_elimination<C, F>(
    h: &Hypergraph,
    cost: F,
    cutoff: Option<C>,
) -> Option<(C, Vec<usize>)>
where
    C: Ord + Clone,
    F: FnMut(&VertexSet) -> C,
{
    let n = h.num_vertices();
    if n == 0 || n > MAX_EXACT_VERTICES {
        return None;
    }
    let adj = h.primal_graph();
    let full: u64 = (1u64 << n) - 1;

    fn bag_of(adj: &[VertexSet], n: usize, v: usize, eliminated: u64) -> VertexSet {
        // v plus all u ∉ eliminated reachable from v via eliminated vertices.
        let mut bag = VertexSet::new();
        bag.insert(v);
        let mut seen = vec![false; n];
        seen[v] = true;
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            for u in adj[x].iter() {
                if seen[u] {
                    continue;
                }
                seen[u] = true;
                if eliminated >> u & 1 == 1 {
                    stack.push(u);
                } else {
                    bag.insert(u);
                }
            }
        }
        bag
    }

    struct Ctx<'a, C, F> {
        adj: &'a [VertexSet],
        n: usize,
        full: u64,
        cost: F,
        cutoff: Option<C>,
        memo: HashMap<u64, Option<(C, usize)>>,
        bag_cost_cache: HashMap<VertexSet, C>,
    }

    fn solve<C: Ord + Clone, F: FnMut(&VertexSet) -> C>(
        ctx: &mut Ctx<C, F>,
        eliminated: u64,
    ) -> Option<(C, usize)> {
        if let Some(hit) = ctx.memo.get(&eliminated) {
            return hit.clone();
        }
        let mut best: Option<(C, usize)> = None;
        for v in 0..ctx.n {
            if eliminated >> v & 1 == 1 {
                continue;
            }
            let bag = bag_of(ctx.adj, ctx.n, v, eliminated);
            let c_here = match ctx.bag_cost_cache.get(&bag) {
                Some(c) => c.clone(),
                None => {
                    let c = (ctx.cost)(&bag);
                    ctx.bag_cost_cache.insert(bag, c.clone());
                    c
                }
            };
            if let Some(cut) = &ctx.cutoff {
                if &c_here >= cut {
                    continue;
                }
            }
            if let Some((b, _)) = &best {
                if &c_here >= b {
                    continue; // cannot improve the max
                }
            }
            let next = eliminated | (1u64 << v);
            let total = if next == ctx.full {
                Some(c_here.clone())
            } else {
                solve(ctx, next).map(|(rest, _)| rest.max(c_here.clone()))
            };
            if let Some(t) = total {
                let better = match &best {
                    None => true,
                    Some((b, _)) => &t < b,
                };
                if better {
                    best = Some((t, v));
                }
            }
        }
        ctx.memo.insert(eliminated, best.clone());
        best
    }

    let mut ctx = Ctx {
        adj: &adj,
        n,
        full,
        cost,
        cutoff,
        memo: HashMap::new(),
        bag_cost_cache: HashMap::new(),
    };
    let (best_cost, _) = solve(&mut ctx, 0)?;
    // Reconstruct the order greedily from the memo.
    let mut order = Vec::with_capacity(n);
    let mut eliminated = 0u64;
    while eliminated != full {
        let (_, v) = ctx
            .memo
            .get(&eliminated)
            .cloned()
            .flatten()
            .expect("memo holds the optimal chain");
        order.push(v);
        eliminated |= 1 << v;
    }
    Some((best_cost, order))
}

/// Builds the tree decomposition induced by an elimination order: node `t`
/// has bag `bag(order[t], eliminated_before_t)`; its parent is the node of
/// the earliest-eliminated later vertex in its bag.
pub fn decomposition_from_order(
    h: &Hypergraph,
    order: &[usize],
) -> Vec<(VertexSet, Option<usize>)> {
    let n = h.num_vertices();
    assert_eq!(order.len(), n);
    let adj = h.primal_graph();
    let mut position = vec![0usize; n];
    for (t, &v) in order.iter().enumerate() {
        position[v] = t;
    }
    let mut bags: Vec<VertexSet> = Vec::with_capacity(n);
    let mut eliminated = 0u64;
    for &v in order {
        // Recompute bag(v, eliminated).
        let mut bag = VertexSet::new();
        bag.insert(v);
        let mut seen = vec![false; n];
        seen[v] = true;
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            for u in adj[x].iter() {
                if seen[u] {
                    continue;
                }
                seen[u] = true;
                if eliminated >> u & 1 == 1 {
                    stack.push(u);
                } else {
                    bag.insert(u);
                }
            }
        }
        bags.push(bag);
        eliminated |= 1 << v;
    }
    // Parent: node of the earliest-later vertex in bag \ {v}.
    let mut parents: Vec<Option<usize>> = vec![None; n];
    for (t, &v) in order.iter().enumerate() {
        let next = bags[t]
            .iter()
            .filter(|&u| u != v && position[u] > t)
            .min_by_key(|&u| position[u]);
        parents[t] = next.map(|u| position[u]);
    }
    bags.into_iter().zip(parents).collect()
}

/// Assembles a [`Decomposition`] from elimination-order bags, computing each
/// node's weight function with `cover_for`. The forest is rooted at the last
/// eliminated vertex; earlier roots (disconnected hypergraphs) attach there.
pub fn assemble<F>(h: &Hypergraph, order: &[usize], cover_for: F) -> Decomposition
where
    F: FnMut(&VertexSet) -> Vec<(usize, arith::Rational)>,
{
    let shape = decomposition_from_order(h, order);
    let n = shape.len();
    let make_node = |bag: &VertexSet, cover_for: &mut F| Node {
        bag: bag.clone(),
        weights: cover_for(bag),
    };
    // Root is the last node; every parentless node other than it hangs off it.
    let mut ids = vec![usize::MAX; n];
    let mut cover = cover_for;
    let mut d = Decomposition::new(make_node(&shape[n - 1].0, &mut cover));
    ids[n - 1] = d.root();
    // Process from the back so parents exist before children.
    for t in (0..n - 1).rev() {
        let parent = shape[t].1.unwrap_or(n - 1);
        let parent_id = ids[parent];
        assert_ne!(parent_id, usize::MAX, "parents are later in the order");
        ids[t] = d.add_child(parent_id, make_node(&shape[t].0, &mut cover));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    /// Treewidth-style cost: bag size (so result = treewidth + 1).
    fn bag_size_cost(h: &Hypergraph) -> Option<(usize, Vec<usize>)> {
        optimal_elimination(h, |b| b.len(), None)
    }

    #[test]
    fn treewidth_of_standard_graphs() {
        // Path: tw 1 -> max bag 2; cycle: tw 2 -> 3; clique K5: 5; grid 3x3: 4.
        assert_eq!(bag_size_cost(&generators::path(6)).unwrap().0, 2);
        assert_eq!(bag_size_cost(&generators::cycle(6)).unwrap().0, 3);
        assert_eq!(bag_size_cost(&generators::clique(5)).unwrap().0, 5);
        assert_eq!(bag_size_cost(&generators::grid(3, 3)).unwrap().0, 4);
    }

    #[test]
    fn decomposition_shape_is_a_tree_covering_all_edges() {
        let h = generators::cycle(5);
        let (_, order) = bag_size_cost(&h).unwrap();
        let shape = decomposition_from_order(&h, &order);
        // Exactly one parentless node (the last eliminated).
        assert_eq!(shape.iter().filter(|(_, p)| p.is_none()).count(), 1);
        // Every edge inside some bag.
        for e in h.edges() {
            assert!(shape.iter().any(|(b, _)| e.is_subset(b)));
        }
    }

    #[test]
    fn assembled_decomposition_is_valid() {
        let h = generators::cycle(5);
        let (_, order) = bag_size_cost(&h).unwrap();
        let d = assemble(&h, &order, |bag| {
            cover::integral_cover(&h, bag)
                .unwrap()
                .edges
                .into_iter()
                .map(|e| (e, arith::Rational::one()))
                .collect()
        });
        assert_eq!(decomp::validate_ghd(&h, &d), Ok(()), "{}", d.render(&h));
    }

    #[test]
    fn too_large_instances_refused() {
        let h = generators::grid(5, 6); // 30 > 24 vertices
        assert!(optimal_elimination(&h, |b| b.len(), None).is_none());
    }

    #[test]
    fn cutoff_prunes() {
        let h = generators::clique(6);
        assert!(optimal_elimination(&h, |b| b.len(), Some(5)).is_none());
        assert!(optimal_elimination(&h, |b| b.len(), Some(7)).is_some());
    }
}
