//! `Check(GHD, k)` under the paper's tractable restrictions (Section 4):
//! subedge functions for the BIP (Theorem 4.15) and BMIP (Theorem 4.11),
//! union-of-intersections trees (Algorithm 1, Figure 7), the reduction to
//! `Check(HD, k)` on the augmented hypergraph, and an exact exponential
//! `ghw` baseline for certification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backends;
pub mod check;
pub mod elimination;
pub mod exact;
pub mod subedges;

pub use check::{
    augment, check_ghd_bip, check_ghd_bmip, generalized_hypertree_width_bip, project_to_original,
    Augmented, GhdAnswer,
};
pub use exact::{
    ghw_exact, ghw_exact_subset_oracle, ghw_exact_with_stats, ghw_upper_bound,
    ghw_upper_bound_with_stats,
};
pub use subedges::{
    bip_subedges, bmip_subedges, union_of_intersections_tree, SubedgeLimits, SubedgeSet, UoiNode,
};
