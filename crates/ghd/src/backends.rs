//! The `ghw` members of the width-backend portfolio.
//!
//! Four [`Backend`]s resolve [`Measure::Ghw`] requests, each reusing the
//! corresponding `_with_stats` path (so a backend's answer is
//! byte-identical to calling that path directly, and repeated or
//! concurrent identical runs deduplicate through the result cache —
//! note the `;backend=` slot in every cache key):
//!
//! * `engine` — the default hybrid: heuristic seed, edge-union engine
//!   under the seeded cutoff, elimination-DP fallback. Always eligible.
//! * `elim` — the elimination-order DP alone (≤ 24 vertices).
//! * `oracle` — the subset-enumeration cross-check (small instances).
//! * `seed-refine` — heuristic-ub-then-refine: reports the witnessed
//!   upper bound within milliseconds, then runs the full exact path; in
//!   a race this backend is the time-to-first-bound champion while the
//!   result cache dedups its exact tail onto the `engine` member's
//!   in-flight search.

use crate::exact::{
    ghw_exact_elimination_with_stats, ghw_exact_subset_oracle, ghw_exact_with_stats,
    ghw_upper_bound_with_stats,
};
use arith::Rational;
use decomp::Decomposition;
use hypergraph::Hypergraph;
use solver::backend::{Backend, BackendId, Measure, Outcome, RunCtl, WidthRequest};
use solver::SearchStats;

/// The `ghw` portfolio, in admission order (the always-eligible engine
/// first).
pub fn backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(Engine),
        Box::new(SeedRefine),
        Box::new(Elimination),
        Box::new(SubsetOracle),
    ]
}

fn cutoff_of(req: &WidthRequest) -> Option<usize> {
    match req.measure {
        Measure::Ghw { cutoff } => cutoff,
        ref m => unreachable!("ghw backend asked for {m:?}"),
    }
}

/// Converts a `(width, witness)` minimizer answer into an [`Outcome`]:
/// `None` from these complete searches means "no decomposition within
/// the cutoff" when one was set, and "out of range" when searching
/// unbounded.
fn outcome_of(
    id: BackendId,
    bounded: bool,
    result: Option<(usize, Decomposition)>,
    stats: SearchStats,
) -> Outcome {
    match result {
        Some((w, d)) => Outcome::exact(id, Rational::from(w), d, stats),
        None if bounded => Outcome::certified_no(id, stats),
        None => Outcome::unresolved(id, stats),
    }
}

struct Engine;

impl Backend for Engine {
    fn id(&self) -> BackendId {
        "engine"
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
        let cutoff = cutoff_of(req);
        let (result, stats) = ghw_exact_with_stats(h, cutoff, req.opts);
        // The hybrid's `None` is definitive under a cutoff; unbounded, it
        // means every exact path was out of range.
        outcome_of(self.id(), cutoff.is_some(), result, stats)
    }
}

struct Elimination;

impl Backend for Elimination {
    fn id(&self) -> BackendId {
        "elim"
    }

    fn eligible(&self, h: &Hypergraph, _req: &WidthRequest) -> bool {
        // Conservative pre-prep gate; preprocessing only shrinks blocks.
        h.num_vertices() <= crate::elimination::MAX_EXACT_VERTICES
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
        let cutoff = cutoff_of(req);
        let (result, stats) = ghw_exact_elimination_with_stats(h, cutoff, req.opts);
        outcome_of(self.id(), cutoff.is_some(), result, stats)
    }
}

struct SubsetOracle;

impl Backend for SubsetOracle {
    fn id(&self) -> BackendId {
        "oracle"
    }

    fn eligible(&self, h: &Hypergraph, _req: &WidthRequest) -> bool {
        h.num_vertices() <= solver::MAX_SUBSET_ORACLE_VERTICES
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
        let cutoff = cutoff_of(req);
        let reuse = req.opts.reuse_results && !req.opts.speculate;
        let key = format!("cutoff={cutoff:?};backend=oracle");
        let (result, stats) = prep::cached_query(h, "result-ghw", key, reuse, || {
            (ghw_exact_subset_oracle(h, cutoff), SearchStats::default())
        });
        // The oracle is complete on eligible instances, so `None` is a
        // certified cutoff answer whenever a cutoff was set.
        outcome_of(self.id(), cutoff.is_some(), result, stats)
    }
}

struct SeedRefine;

impl Backend for SeedRefine {
    fn id(&self) -> BackendId {
        "seed-refine"
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, ctl: &RunCtl) -> Outcome {
        let cutoff = cutoff_of(req);
        // Phase 1: the witnessed heuristic bound, reported immediately.
        let (seed, mut stats) = ghw_upper_bound_with_stats(h, req.opts);
        if let Some((ub, d)) = &seed {
            ctl.sink.report_upper(Rational::from(*ub), Some(d));
            if *ub == 1 {
                // ghw >= 1 always: a width-1 witness is already exact.
                let (ub, d) = seed.expect("present");
                return Outcome::exact(self.id(), Rational::from(ub), d, stats);
            }
        }
        // Phase 2: the full exact path (internally re-seeded; identical
        // request keys dedup onto any in-flight `engine` run).
        let (result, s) = ghw_exact_with_stats(h, cutoff, req.opts);
        stats.merge(&s);
        outcome_of(self.id(), cutoff.is_some(), result, stats)
    }
}
