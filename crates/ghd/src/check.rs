//! `Check(GHD, k)` via subedge augmentation (Theorems 4.11 / 4.15):
//! `ghw(H) <= k` iff `hw(H') <= k` for `H' = H ∪ f(H,k)`, and any HD of
//! `H'` of width `k` converts into a GHD of `H` of width `k` by replacing
//! subedges with their originators.

use crate::subedges::{bip_subedges, bmip_subedges, SubedgeLimits, SubedgeSet};
use decomp::{Decomposition, Node};
use hypergraph::{Hypergraph, VertexSet};

/// A hypergraph augmented with subedges, remembering originators.
#[derive(Clone, Debug)]
pub struct Augmented {
    /// `H' = H + f(H,k)`.
    pub hypergraph: Hypergraph,
    /// Maps every edge of `H'` to its originator edge of `H` (original
    /// edges map to themselves).
    pub originator: Vec<usize>,
    /// Number of subedges added.
    pub added: usize,
    /// Whether the subedge enumeration was truncated (see
    /// [`SubedgeLimits::max_subedges`]); if so a `None` answer from
    /// [`check_ghd_bip`] is not a certified "no".
    pub truncated: bool,
}

/// Builds `H' = H ∪ f(H,k)`.
pub fn augment(h: &Hypergraph, f: SubedgeSet) -> Augmented {
    let mut hp = h.clone();
    let mut originator: Vec<usize> = (0..h.num_edges()).collect();
    let added = f.subedges.len();
    for (i, (s, o)) in f.subedges.into_iter().zip(f.originators).enumerate() {
        hp.add_edge(format!("sub{i}"), &s);
        originator.push(o);
    }
    Augmented {
        hypergraph: hp,
        originator,
        added,
        truncated: f.truncated,
    }
}

/// Converts an HD of the augmented hypergraph into a GHD of `H` by mapping
/// every λ-edge to its originator. Bags are unchanged, so width and all GHD
/// conditions carry over (the special condition is deliberately given up).
pub fn project_to_original(h: &Hypergraph, aug: &Augmented, d: &Decomposition) -> Decomposition {
    fn convert(
        aug: &Augmented,
        d: &Decomposition,
        u: usize,
        out: &mut Decomposition,
        parent: Option<usize>,
    ) {
        let mut weights: Vec<(usize, arith::Rational)> = Vec::new();
        for (e, w) in &d.node(u).weights {
            let orig = aug.originator[*e];
            // Two subedges of the same originator cannot both be needed:
            // merge by keeping max weight (integral case: both are 1).
            match weights.iter_mut().find(|(o, _)| *o == orig) {
                Some((_, w0)) => {
                    if w > w0 {
                        *w0 = w.clone();
                    }
                }
                None => weights.push((orig, w.clone())),
            }
        }
        let node = Node {
            bag: d.node(u).bag.clone(),
            weights,
        };
        let id = match parent {
            None => out.root(),
            Some(p) => out.add_child(p, node.clone()),
        };
        if parent.is_none() {
            *out.node_mut(id) = node;
        }
        for &c in d.children(u) {
            convert(aug, d, c, out, Some(id));
        }
    }
    let _ = h;
    let mut out = Decomposition::new(Node::integral(VertexSet::new(), []));
    convert(aug, d, d.root(), &mut out, None);
    out
}

/// The outcome of a GHD check.
#[derive(Clone, Debug)]
pub enum GhdAnswer {
    /// A GHD of `H` of width `<= k` (paired with the subedge statistics).
    Yes {
        /// The witness GHD (over the *original* hypergraph).
        decomposition: Box<Decomposition>,
        /// Number of subedges generated for the reduction.
        subedges_added: usize,
    },
    /// No GHD of width `<= k` exists (certified: enumeration was complete).
    No,
    /// The subedge enumeration was truncated, so "no HD found" is not a
    /// certificate; retry with larger [`SubedgeLimits`].
    Unknown,
}

impl GhdAnswer {
    /// The witness decomposition, if the answer is yes.
    pub fn decomposition(&self) -> Option<&Decomposition> {
        match self {
            GhdAnswer::Yes { decomposition, .. } => Some(decomposition),
            _ => None,
        }
    }

    /// True iff the answer is a certified yes.
    pub fn is_yes(&self) -> bool {
        matches!(self, GhdAnswer::Yes { .. })
    }
}

/// `Check(GHD, k)` for BIP hypergraphs (Theorem 4.15).
pub fn check_ghd_bip(h: &Hypergraph, k: usize, limits: SubedgeLimits) -> GhdAnswer {
    run_check(h, k, augment(h, bip_subedges(h, k, limits)))
}

/// `Check(GHD, k)` for BMIP hypergraphs with multi-intersection parameter
/// `c` (Theorem 4.11); `c = 2` coincides with [`check_ghd_bip`].
pub fn check_ghd_bmip(h: &Hypergraph, k: usize, c: usize, limits: SubedgeLimits) -> GhdAnswer {
    let f = if c <= 2 {
        bip_subedges(h, k, limits)
    } else {
        bmip_subedges(h, k, c, limits)
    };
    run_check(h, k, augment(h, f))
}

fn run_check(h: &Hypergraph, k: usize, aug: Augmented) -> GhdAnswer {
    match hd::check_hd(&aug.hypergraph, k) {
        Some(d) => GhdAnswer::Yes {
            decomposition: Box::new(project_to_original(h, &aug, &d)),
            subedges_added: aug.added,
        },
        None if aug.truncated => GhdAnswer::Unknown,
        None => GhdAnswer::No,
    }
}

/// `ghw(H)` for BIP hypergraphs by iterating `k`.
pub fn generalized_hypertree_width_bip(
    h: &Hypergraph,
    max_k: usize,
    limits: SubedgeLimits,
) -> Option<(usize, Decomposition)> {
    for k in 1..=max_k {
        if let GhdAnswer::Yes { decomposition, .. } = check_ghd_bip(h, k, limits) {
            return Some((k, *decomposition));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate;
    use hypergraph::generators;

    fn limits() -> SubedgeLimits {
        SubedgeLimits::default()
    }

    #[test]
    fn example_4_3_ghw_is_2_while_hw_is_3() {
        // The headline separation of Example 4.3.
        let h = generators::example_4_3();
        assert!(hd::check_hd(&h, 2).is_none());
        let ans = check_ghd_bip(&h, 2, limits());
        let d = ans.decomposition().expect("ghw(H0) = 2");
        assert_eq!(
            validate::validate_ghd(&h, &d.clone()),
            Ok(()),
            "{}",
            d.render(&h)
        );
        assert!(d.width() <= arith::Rational::from(2usize));
        // And ghw > 1 because H0 is cyclic.
        assert!(matches!(check_ghd_bip(&h, 1, limits()), GhdAnswer::No));
    }

    #[test]
    fn acyclic_ghw_1() {
        for h in [generators::path(5), generators::cq_chain(4, 3, 1)] {
            let ans = check_ghd_bip(&h, 1, limits());
            assert!(ans.is_yes());
        }
    }

    #[test]
    fn cliques_ghw() {
        // ghw(K_n) = ceil(n/2).
        let h = generators::clique(5);
        assert!(matches!(check_ghd_bip(&h, 2, limits()), GhdAnswer::No));
        assert!(check_ghd_bip(&h, 3, limits()).is_yes());
    }

    #[test]
    fn width_search_on_cycles() {
        for n in [4usize, 6] {
            let h = generators::cycle(n);
            let (w, d) = generalized_hypertree_width_bip(&h, 3, limits()).unwrap();
            assert_eq!(w, 2);
            assert_eq!(validate::validate_ghd(&h, &d), Ok(()));
        }
    }

    #[test]
    fn ghw_never_exceeds_hw_on_corpus() {
        for seed in 0..4u64 {
            let h = generators::random_bip(9, 6, 2, 3, seed);
            let hw = hd::hypertree_width(&h, 4).map(|(w, _)| w);
            let ghw = generalized_hypertree_width_bip(&h, 4, limits()).map(|(w, _)| w);
            if let (Some(hw), Some(ghw)) = (hw, ghw) {
                assert!(ghw <= hw, "seed {seed}: ghw {ghw} > hw {hw}");
            }
        }
    }

    #[test]
    fn bmip_agrees_with_bip_on_example() {
        let h = generators::example_4_3();
        let a = check_ghd_bmip(&h, 2, 3, limits());
        assert!(a.is_yes());
    }

    #[test]
    fn projection_merges_duplicate_originators() {
        // Build an augmented hypergraph by hand and check λ maps back.
        let h = generators::cycle(4);
        let f = bip_subedges(&h, 2, limits());
        let aug = augment(&h, f);
        if let Some(d) = hd::check_hd(&aug.hypergraph, 2) {
            let g = project_to_original(&h, &aug, &d);
            assert_eq!(validate::validate_ghd(&h, &g), Ok(()));
            for node in g.nodes() {
                for (e, _) in &node.weights {
                    assert!(*e < h.num_edges());
                }
            }
        } else {
            panic!("C4 has hw(H') = 2");
        }
    }
}
