//! Candidate-bag generation for the width-search strategies.
//!
//! The exact `ghw`/`fhw` minimizers used to enumerate raw vertex subsets
//! (`O(2^n)` bags per component, hard-gated at 18 vertices). This crate
//! owns the two replacements that break that wall:
//!
//! * [`edge_union`] — streams candidate bags in the bag-maximal normal
//!   form (component-restricted unions of at most `k` edges),
//!   deduplicated, restriction-maximal, balanced-separator-filtered and
//!   pre-gated — an `O(m^k)` space in the edge count;
//! * [`ub`] — heuristic, witness-backed upper bounds from min-degree /
//!   min-fill elimination orderings plus a greedy local-search pass,
//!   whose `ub(h)` seeds the minimizers' cutoffs from the first round
//!   (and certifies a failed seeded search as the exact answer).
//!
//! The crate sits below `solver` (beside `prep`): it produces plain
//! iterators and decompositions; the strategy crates wrap them into the
//! engine's `CandidateStream`s. The old subset enumerator survives in
//! `solver::stream_subset_bags` as the `fhw` completeness tail and the
//! small-instance cross-check oracle. See `src/README.md` for the
//! enumeration order, the balancedness argument and the oracle contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edge_union;
pub mod ub;

pub use edge_union::{
    edge_union_bags, restriction_pool, stream_size_bound, EdgeUnionConfig, DEFAULT_BALANCE,
    DEFAULT_STREAM_CAP,
};
pub use ub::{elimination_order, upper_bound, OrderHeuristic, PricedBag};

use std::sync::atomic::{AtomicUsize, Ordering};

/// Concurrent tallies of one enumeration: how many candidate bags were
/// generated and how many the filters discarded. Strategies hold one per
/// search and surface the totals as `SearchStats::cand_generated` /
/// `cand_filtered`. Deterministic: streams are pulled in a fixed order by
/// the engine's round schedule, so the totals are thread-count-invariant.
#[derive(Debug, Default)]
pub struct Counters {
    generated: AtomicUsize,
    filtered: AtomicUsize,
    cap_hits: AtomicUsize,
}

impl Counters {
    /// A zeroed tally.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Records one generated candidate.
    pub fn count_generated(&self) {
        self.generated.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one filtered (discarded) candidate.
    pub fn count_filtered(&self) {
        self.filtered.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one state whose edge-union prefix was skipped because the
    /// per-state stream bound hit the adaptive cap.
    pub fn count_cap_hit(&self) {
        self.cap_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Total candidates generated so far.
    pub fn generated(&self) -> usize {
        self.generated.load(Ordering::Relaxed)
    }

    /// Total candidates filtered so far.
    pub fn filtered(&self) -> usize {
        self.filtered.load(Ordering::Relaxed)
    }

    /// Total per-state cap hits so far.
    pub fn cap_hits(&self) -> usize {
        self.cap_hits.load(Ordering::Relaxed)
    }
}
