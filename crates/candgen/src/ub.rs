//! Heuristic, witness-backed upper bounds on `ghw`/`fhw`.
//!
//! Every elimination ordering of the primal graph induces a tree
//! decomposition (bags are a vertex plus its not-yet-eliminated neighbors
//! in the progressively filled graph; hyperedges are primal cliques and
//! land in the bag of their earliest-eliminated vertex), so pricing its
//! bags with any monotone cost — `ρ` for GHDs, `ρ*` for FHDs — yields a
//! valid decomposition whose width upper-bounds the exact one. This
//! module computes such bounds from the two classic greedy orderings
//! (**min-degree** and **min-fill**), improves the better one with a
//! greedy local-search pass (adjacent swaps around the most expensive
//! elimination step), and returns the cheaper result *with its witness*.
//!
//! The witness is what makes the bound load-bearing: the exact searches
//! seed their engine cutoff with `ub` — the search then only has to find
//! something strictly better, and a failed search *is* the exact answer
//! `ub`, certified by the witness in hand. Unlike the exact elimination
//! DP this construction is polynomial, so it serves any instance size.

use arith::Rational;
use decomp::{Decomposition, Node};
use hypergraph::{Hypergraph, VertexSet};
use std::collections::HashMap;

/// Which greedy elimination ordering to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderHeuristic {
    /// Eliminate a vertex of minimum degree in the filled graph.
    MinDegree,
    /// Eliminate a vertex whose elimination adds the fewest fill edges.
    MinFill,
}

/// Maximum local-search improvement rounds per ordering.
const IMPROVE_ROUNDS: usize = 16;

/// Below this many vertices [`upper_bound`] runs the min-degree ordering
/// alone, skipping min-fill and the local-search pass: on tiny instances
/// the greedy orderings coincide (or the exact search is trivial anyway),
/// and the extra pricing would cost more than the search it seeds. A
/// looser bound never affects exactness — only how early the cutoff
/// gates arm.
const FULL_EFFORT_VERTICES: usize = 9;

/// A priced bag: its cost and the witness edge weights recorded on the
/// decomposition node.
pub type PricedBag<C> = (C, Vec<(usize, Rational)>);

/// The greedy elimination ordering of `h`'s primal graph under
/// `heuristic`. Ties break toward the smallest vertex index, so the
/// ordering — and everything derived from it — is deterministic.
pub fn elimination_order(h: &Hypergraph, heuristic: OrderHeuristic) -> Vec<usize> {
    let n = h.num_vertices();
    let mut adj = h.primal_graph();
    let mut alive = h.all_vertices();
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = alive
            .iter()
            .min_by_key(|&v| {
                let neighbors = adj[v].intersection(&alive);
                match heuristic {
                    OrderHeuristic::MinDegree => neighbors.len(),
                    OrderHeuristic::MinFill => fill_in(&adj, &neighbors),
                }
            })
            .expect("alive vertices remain");
        eliminate(&mut adj, &mut alive, v);
        order.push(v);
    }
    order
}

/// Number of fill edges eliminating a vertex with this neighborhood adds.
fn fill_in(adj: &[VertexSet], neighbors: &VertexSet) -> usize {
    let mut missing = 0usize;
    let nbrs: Vec<usize> = neighbors.to_vec();
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if !adj[a].contains(b) {
                missing += 1;
            }
        }
    }
    missing
}

/// Removes `v` from the alive set, connecting its alive neighbors into a
/// clique (the fill step).
fn eliminate(adj: &mut [VertexSet], alive: &mut VertexSet, v: usize) {
    alive.remove(v);
    let neighbors = adj[v].intersection(alive);
    for a in neighbors.iter() {
        adj[a].union_with(&neighbors);
        adj[a].remove(a);
    }
}

/// The elimination bags of `order`, in elimination order: bag `t` is
/// `order[t]` plus its still-alive neighbors in the filled graph.
fn bags_of_order(h: &Hypergraph, order: &[usize]) -> Vec<VertexSet> {
    let mut adj = h.primal_graph();
    let mut alive = h.all_vertices();
    let mut bags = Vec::with_capacity(order.len());
    for &v in order {
        let mut bag = adj[v].intersection(&alive);
        bag.insert(v);
        bags.push(bag);
        eliminate(&mut adj, &mut alive, v);
    }
    bags
}

/// The width (maximum bag cost) of `order` and the position achieving it,
/// pricing through the shared memo.
fn order_width<C: Ord + Clone>(
    h: &Hypergraph,
    order: &[usize],
    price: &mut impl FnMut(&VertexSet) -> PricedBag<C>,
    memo: &mut HashMap<VertexSet, PricedBag<C>>,
) -> (C, usize) {
    let bags = bags_of_order(h, order);
    let mut best: Option<(C, usize)> = None;
    for (t, bag) in bags.iter().enumerate() {
        let (cost, _) = memo
            .entry(bag.clone())
            .or_insert_with(|| price(bag))
            .clone();
        let improves = match &best {
            None => true,
            Some((c, _)) => cost > *c,
        };
        if improves {
            best = Some((cost, t));
        }
    }
    best.expect("non-empty order")
}

/// Greedy local search: swap the most expensive elimination step with a
/// neighbor while it strictly lowers the width, up to
/// [`IMPROVE_ROUNDS`] rounds.
fn improve_order<C: Ord + Clone>(
    h: &Hypergraph,
    order: &mut [usize],
    price: &mut impl FnMut(&VertexSet) -> PricedBag<C>,
    memo: &mut HashMap<VertexSet, PricedBag<C>>,
) -> C {
    let (mut width, mut worst) = order_width(h, order, price, memo);
    for _ in 0..IMPROVE_ROUNDS {
        let mut improved = false;
        for p in [worst.wrapping_sub(1), worst + 1] {
            if p >= order.len() || worst >= order.len() {
                continue;
            }
            order.swap(worst, p);
            let (w, at) = order_width(h, order, price, memo);
            if w < width {
                width = w;
                worst = at;
                improved = true;
                break;
            }
            order.swap(worst, p);
        }
        if !improved {
            break;
        }
    }
    width
}

/// Computes a heuristic upper bound on the width of `h` under the
/// monotone bag price `price` (e.g. `ρ` with its cover edges, or `ρ*`
/// with its LP weights), together with a valid witness decomposition of
/// exactly that width.
///
/// `h` must be non-empty and free of isolated vertices (every bag must be
/// priceable) — the same contract as the exact searches.
pub fn upper_bound<C: Ord + Clone>(
    h: &Hypergraph,
    mut price: impl FnMut(&VertexSet) -> PricedBag<C>,
) -> (C, Decomposition) {
    assert!(h.num_vertices() > 0, "empty hypergraph");
    let _span = obs::span!(
        "candgen",
        stage = "upper_bound",
        vertices = h.num_vertices(),
        edges = h.num_edges()
    );
    let full_effort = h.num_vertices() >= FULL_EFFORT_VERTICES;
    let heuristics: &[OrderHeuristic] = if full_effort {
        &[OrderHeuristic::MinDegree, OrderHeuristic::MinFill]
    } else {
        &[OrderHeuristic::MinDegree]
    };
    let mut memo: HashMap<VertexSet, PricedBag<C>> = HashMap::new();
    let mut best: Option<(C, Vec<usize>)> = None;
    for &heuristic in heuristics {
        let mut order = elimination_order(h, heuristic);
        let width = if full_effort {
            improve_order(h, &mut order, &mut price, &mut memo)
        } else {
            order_width(h, &order, &mut price, &mut memo).0
        };
        let improves = match &best {
            None => true,
            Some((w, _)) => width < *w,
        };
        if improves {
            best = Some((width, order));
        }
    }
    let (width, order) = best.expect("at least one ordering");
    (width, assemble(h, &order, &memo))
}

/// Builds the decomposition induced by `order`: node `t`'s parent is the
/// node of the earliest-eliminated later vertex in its bag (the standard
/// elimination-tree construction; parentless nodes of disconnected
/// instances attach under the final root). Node weights come from the
/// pricing memo, which [`upper_bound`] guarantees covers every bag.
fn assemble<C: Clone>(
    h: &Hypergraph,
    order: &[usize],
    memo: &HashMap<VertexSet, PricedBag<C>>,
) -> Decomposition {
    let bags = bags_of_order(h, order);
    let n = bags.len();
    let mut position = vec![0usize; h.num_vertices()];
    for (t, &v) in order.iter().enumerate() {
        position[v] = t;
    }
    let node = |bag: &VertexSet| Node {
        bag: bag.clone(),
        weights: memo.get(bag).expect("every bag priced").1.clone(),
    };
    let mut ids = vec![usize::MAX; n];
    let mut d = Decomposition::new(node(&bags[n - 1]));
    ids[n - 1] = 0;
    for t in (0..n - 1).rev() {
        let parent = bags[t]
            .iter()
            .filter(|&u| u != order[t] && position[u] > t)
            .min_by_key(|&u| position[u])
            .map(|u| position[u])
            .unwrap_or(n - 1);
        let parent_id = ids[parent];
        debug_assert_ne!(parent_id, usize::MAX, "parents are later in the order");
        ids[t] = d.add_child(parent_id, node(&bags[t]));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate;
    use hypergraph::generators;

    fn rho_price(h: &Hypergraph) -> impl FnMut(&VertexSet) -> PricedBag<usize> + '_ {
        |bag| {
            let c = cover::integral_cover(h, bag).expect("no isolated vertices");
            let w = c.weight();
            (
                w,
                c.edges.into_iter().map(|e| (e, Rational::one())).collect(),
            )
        }
    }

    fn rho_star_price(h: &Hypergraph) -> impl FnMut(&VertexSet) -> PricedBag<Rational> + '_ {
        |bag| {
            let c = cover::fractional_cover(h, bag).expect("no isolated vertices");
            (
                c.weight.clone(),
                c.weights
                    .into_iter()
                    .enumerate()
                    .filter(|(_, w)| !w.is_zero())
                    .collect(),
            )
        }
    }

    #[test]
    fn ub_witnesses_validate_and_match_their_width() {
        for h in [
            generators::path(6),
            generators::cycle(7),
            generators::clique(5),
            generators::grid(3, 3),
            generators::example_4_3(),
            generators::triangle_chain(3),
        ] {
            let (ub, d) = upper_bound(&h, rho_price(&h));
            assert_eq!(validate::validate_ghd(&h, &d), Ok(()), "{}", d.render(&h));
            assert!(d.width() <= Rational::from(ub));
            let (ubf, df) = upper_bound(&h, rho_star_price(&h));
            assert_eq!(validate::validate_fhd(&h, &df), Ok(()), "{}", df.render(&h));
            assert!(df.width() <= ubf);
        }
    }

    #[test]
    fn ub_is_tight_on_easy_families() {
        // Acyclic: ub = 1; cycles: ub = 2; triangle fhw: 3/2.
        let (ub, _) = upper_bound(&generators::path(8), rho_price(&generators::path(8)));
        assert_eq!(ub, 1);
        let c = generators::cycle(9);
        let (ub, _) = upper_bound(&c, rho_price(&c));
        assert_eq!(ub, 2);
        let t = generators::cycle(3);
        let (ub, _) = upper_bound(&t, rho_star_price(&t));
        assert_eq!(ub, Rational::from_frac(3, 2));
    }

    #[test]
    fn scales_past_the_exact_windows() {
        // 26 vertices: beyond both the subset gate and the elimination DP.
        let c = generators::cycle(26);
        let (ub, d) = upper_bound(&c, rho_price(&c));
        assert_eq!(ub, 2);
        assert_eq!(validate::validate_ghd(&c, &d), Ok(()));
    }

    #[test]
    fn orders_are_permutations() {
        let h = generators::grid(3, 4);
        for heuristic in [OrderHeuristic::MinDegree, OrderHeuristic::MinFill] {
            let mut order = elimination_order(&h, heuristic);
            order.sort_unstable();
            assert_eq!(order, (0..12).collect::<Vec<_>>());
        }
    }
}
