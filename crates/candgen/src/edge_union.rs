//! The edge-union candidate-bag enumerator.
//!
//! For a search state `(C, conn)` the exact `ghw`/`fhw` engines used to
//! propose every vertex subset `conn ⊆ B ⊆ conn ∪ C` — `O(2^|C|)` bags,
//! the wall behind the old 18-vertex gate. This module instead streams
//! bags of the *bag-maximal normal form*: every width-`k` GHD normalizes
//! so that each bag is `⋃S ∩ (C ∪ conn)` for a set `S` of at most `k`
//! edges (the bag's minimum edge cover, with the bag enlarged to
//! everything the cover touches inside the region — Gottlob–Leone–
//! Scarcello's complete form, the candidate discipline of HyperBench's
//! BalancedGo). That makes the space `O(m^k)` in the edge count instead
//! of `O(2^n)` in the vertex count.
//!
//! The stream applies, in order, per generated union:
//!
//! 1. **Deduplication** — distinct edge sets with equal region unions
//!    yield one bag (the pool is also pre-reduced to distinct,
//!    restriction-*maximal* edge restrictions: an edge whose restriction
//!    is contained in another's can be substituted in any cover without
//!    raising its size, so dropping it loses no normal-form bag);
//! 2. **Connector / progress filters** — `conn ⊆ bag` and
//!    `bag ∩ C ≠ ∅`, the engine's admission preconditions, checked here
//!    so hopeless unions never reach pricing;
//! 3. **Hoisted pre-pricing gates** — the caller's `gate` predicate
//!    (the strategies pass their rank/scattered-set lower bounds against
//!    the seeded cutoff), rejecting bags that could never beat the bound;
//! 4. **Balanced-separator filtering** — at *connector-free* states only
//!    (where any decomposition fragment can be re-rooted at a centroid
//!    node, so the restriction is complete), bags whose largest surviving
//!    component of `C` exceeds the configured fraction are discarded,
//!    BalancedGo-style.
//!
//! Unions are enumerated by increasing edge count (single restrictions
//! first), lexicographic within a count — the cheap-candidates-first
//! discipline every minimizer wants, since an early success arms all
//! later gates.

use crate::Counters;
use hypergraph::fx::FxHashSet;
use hypergraph::{components, Hypergraph, VertexSet};

/// Configuration of one edge-union stream.
#[derive(Clone, Debug)]
pub struct EdgeUnionConfig {
    /// Maximum number of edges per union. For an exact `ghw` search that
    /// only needs to beat a bound `b`, `b - 1` is complete (any GHD of
    /// width `< b` normalizes to unions of `< b` edges).
    pub max_edges: usize,
    /// Balanced-separator filter as a fraction `num/den` of the component
    /// size, applied at connector-free states only (`None` disables).
    /// [`DEFAULT_BALANCE`] is the `1/2` centroid bound, which is complete.
    pub balance: Option<(usize, usize)>,
    /// Adaptive per-state feasibility cap. When set, a state's effective
    /// cap is `min(per_state_cap, 2^|region|)` — the stream can never
    /// usefully out-enumerate the region's own subset space — and a state
    /// whose [`stream_size_bound`] reaches it skips the edge-union stream
    /// entirely (tallied by `Counters::cap_hits`). Only for callers with a
    /// completing fallback stream (the `fhw` subset tail); `None` (the
    /// default) streams unconditionally, which the tail-less `ghw` path
    /// needs for completeness.
    pub per_state_cap: Option<u64>,
}

/// The complete balancedness fraction: every decomposition fragment has a
/// node whose bag splits the covered component into pieces of at most
/// half its vertices (centroid argument), so `1/2` filtering at
/// connector-free states loses no decomposition.
pub const DEFAULT_BALANCE: (usize, usize) = (1, 2);

impl EdgeUnionConfig {
    /// A config with the given edge budget and the complete `1/2`
    /// balancedness filter.
    pub fn with_budget(max_edges: usize) -> Self {
        EdgeUnionConfig {
            max_edges,
            balance: Some(DEFAULT_BALANCE),
            per_state_cap: None,
        }
    }

    /// Enables the adaptive per-state cap (see
    /// [`EdgeUnionConfig::per_state_cap`]); the caller must complete the
    /// candidate space through another stream.
    pub fn with_per_state_cap(mut self, cap: u64) -> Self {
        self.per_state_cap = Some(cap);
        self
    }
}

/// The default feasibility cap for [`stream_size_bound`]: strategy
/// wrappers take the edge-union path only while the per-state enumeration
/// stays below this many unions. One shared constant so the `ghw` and
/// `fhw` engines' feasibility gates cannot silently diverge (the ROADMAP
/// names adaptive tuning of this value as follow-up work).
pub const DEFAULT_STREAM_CAP: u64 = 50_000;

/// Number of non-empty subsets of a `pool`-element set with at most
/// `max_edges` elements, saturating at `cap` — the feasibility estimate
/// the strategy wrappers gate the edge-union engine on before falling
/// back to the elimination DP.
pub fn stream_size_bound(pool: usize, max_edges: usize, cap: u64) -> u64 {
    let mut total: u64 = 0;
    let mut binom: u64 = 1;
    for i in 1..=max_edges.min(pool) {
        // binom = C(pool, i), built incrementally with saturation.
        binom = match binom
            .checked_mul((pool - i + 1) as u64)
            .map(|b| b / i as u64)
        {
            Some(b) => b,
            None => return cap,
        };
        total = total.saturating_add(binom);
        if total >= cap {
            return cap;
        }
    }
    total
}

/// The deduplicated, restriction-maximal edge pool of a region: for every
/// original edge intersecting `region`, its restriction to the region,
/// keeping one representative per distinct restriction and dropping
/// restrictions strictly contained in another (substituting the larger
/// edge in any cover preserves coverage without raising its size, and the
/// enlarged union is itself a normal-form bag).
pub fn restriction_pool(h: &Hypergraph, region: &VertexSet) -> Vec<VertexSet> {
    let mut distinct: Vec<VertexSet> = Vec::new();
    let mut seen: FxHashSet<VertexSet> = FxHashSet::default();
    for e in h.edges() {
        let r = e.intersection(region);
        if !r.is_empty() && seen.insert(r.clone()) {
            distinct.push(r);
        }
    }
    let maximal: Vec<VertexSet> = distinct
        .iter()
        .filter(|r| {
            !distinct
                .iter()
                .any(|other| *r != other && r.is_subset(other))
        })
        .cloned()
        .collect();
    maximal
}

/// Streams the edge-union candidate bags of one search state, lazily.
///
/// `comp`/`conn` are the engine's component and connector; the bags are
/// unions of 1 to `cfg.max_edges` pool restrictions, filtered as described
/// in the module docs. `counters` tallies generated and filtered bags for
/// the `--stats` surface; `gate` is the hoisted pre-pricing predicate
/// (return `false` to reject a bag before it is ever streamed).
pub fn edge_union_bags<'a>(
    h: &'a Hypergraph,
    comp: &VertexSet,
    conn: &VertexSet,
    cfg: &EdgeUnionConfig,
    counters: &'a Counters,
    gate: impl Fn(&VertexSet) -> bool + Send + 'a,
) -> impl Iterator<Item = VertexSet> + Send + 'a {
    let region = comp.union(conn);
    let pool = restriction_pool(h, &region);
    // Adaptive per-state cap: skip states whose union-combination bound
    // reaches the smaller of the configured cap and the region's subset
    // space (at that point the completing tail is at least as cheap).
    let capped = cfg.per_state_cap.is_some_and(|cap| {
        let space = 1u64.checked_shl(region.len() as u32).unwrap_or(u64::MAX);
        let cap_state = cap.min(space);
        stream_size_bound(pool.len(), cfg.max_edges, cap_state) >= cap_state
    });
    if capped {
        counters.count_cap_hit();
    }
    let comp = comp.clone();
    let conn = conn.clone();
    let balance = if conn.is_empty() { cfg.balance } else { None };
    let comp_len = comp.len();
    let mut seen: FxHashSet<VertexSet> = FxHashSet::default();
    let mut subsets = subsets_by_size(if capped { 0 } else { pool.len() }, cfg.max_edges);
    std::iter::from_fn(move || {
        #[allow(clippy::while_let_on_iterator)]
        while let Some(choice) = subsets.next() {
            let mut bag = VertexSet::new();
            for &i in &choice {
                bag.union_with(&pool[i]);
            }
            counters.count_generated();
            if !seen.insert(bag.clone())
                || !conn.is_subset(&bag)
                || !bag.intersects(&comp)
                || !gate(&bag)
            {
                counters.count_filtered();
                continue;
            }
            if let Some((num, den)) = balance {
                // Largest [bag]-component inside `comp` must stay within
                // num/den of the component (complete at 1/2 for
                // connector-free states — see the module docs).
                let oversized = components::components(h, &bag)
                    .into_iter()
                    .filter(|sub| sub.is_subset(&comp))
                    .any(|sub| sub.len() * den > comp_len * num);
                if oversized {
                    counters.count_filtered();
                    continue;
                }
            }
            return Some(bag);
        }
        None
    })
}

/// Lazily enumerates index subsets of `0..n` with `1 <= size <=
/// max_size`, by increasing size, lexicographic within a size — the same
/// combination odometer as the engine's separator streams, local to this
/// crate so `candgen` stays below `solver`.
fn subsets_by_size(n: usize, max_size: usize) -> impl Iterator<Item = Vec<usize>> + Send {
    let max_size = max_size.min(n);
    let mut size = 1usize;
    let mut idx: Vec<usize> = Vec::new();
    let mut fresh = true;
    std::iter::from_fn(move || loop {
        if size > max_size || n == 0 {
            return None;
        }
        if fresh {
            idx = (0..size).collect();
            fresh = false;
            return Some(idx.clone());
        }
        let mut pos = size;
        loop {
            if pos == 0 {
                size += 1;
                fresh = true;
                break;
            }
            pos -= 1;
            if idx[pos] < n - (size - pos) {
                idx[pos] += 1;
                for j in pos + 1..size {
                    idx[j] = idx[j - 1] + 1;
                }
                return Some(idx.clone());
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    fn all_bags(
        h: &Hypergraph,
        comp: &VertexSet,
        conn: &VertexSet,
        budget: usize,
    ) -> Vec<VertexSet> {
        let counters = Counters::default();
        edge_union_bags(
            h,
            comp,
            conn,
            &EdgeUnionConfig {
                max_edges: budget,
                balance: None,
                per_state_cap: None,
            },
            &counters,
            |_| true,
        )
        .collect()
    }

    #[test]
    fn unions_are_deduplicated_and_size_ordered() {
        let h = generators::cycle(4);
        let comp = h.all_vertices();
        let conn = VertexSet::new();
        let bags = all_bags(&h, &comp, &conn, 2);
        let distinct: std::collections::HashSet<_> = bags.iter().cloned().collect();
        assert_eq!(distinct.len(), bags.len(), "no duplicates streamed");
        // 4 single edges + 6 pair unions, of which the two opposite pairs
        // collapse to one full-vertex bag.
        assert_eq!(bags.len(), 9);
        // Single-edge bags come first.
        assert!(bags[..4].iter().all(|b| b.len() == 2));
    }

    #[test]
    fn connector_must_be_covered() {
        let h = generators::path(4);
        let comp = VertexSet::from_iter([2, 3]);
        let conn = VertexSet::from_iter([1]);
        for bag in all_bags(&h, &comp, &conn, 2) {
            assert!(conn.is_subset(&bag), "{bag:?}");
            assert!(bag.intersects(&comp), "{bag:?}");
        }
    }

    #[test]
    fn restriction_pool_drops_subsumed_restrictions() {
        // Edge {0,1} restricted to {0} is subsumed by {0,2} restricted to
        // {0,2}.
        let h = Hypergraph::from_edges(3, vec![vec![0, 1], vec![0, 2]]);
        let region = VertexSet::from_iter([0, 2]);
        let pool = restriction_pool(&h, &region);
        assert_eq!(pool, vec![VertexSet::from_iter([0, 2])]);
    }

    #[test]
    fn balance_filter_applies_only_to_connector_free_states() {
        // On a path, the bag {v0,v1} leaves the component {2,3,4,5} of 4 >
        // 6/2 vertices — filtered at the root, kept under a connector.
        let h = generators::path(6);
        let comp = h.all_vertices();
        let conn = VertexSet::new();
        let counters = Counters::default();
        let cfg = EdgeUnionConfig::with_budget(1);
        let rooted: Vec<VertexSet> =
            edge_union_bags(&h, &comp, &conn, &cfg, &counters, |_| true).collect();
        assert!(
            !rooted.contains(&VertexSet::from_iter([0, 1])),
            "end edges are unbalanced roots: {rooted:?}"
        );
        assert!(rooted.contains(&VertexSet::from_iter([2, 3])));
        assert!(counters.filtered() > 0);
    }

    #[test]
    fn size_bound_saturates() {
        assert_eq!(stream_size_bound(4, 2, 1000), 10);
        assert_eq!(stream_size_bound(100, 50, 5000), 5000);
        assert_eq!(stream_size_bound(0, 3, 10), 0);
    }

    #[test]
    fn per_state_cap_skips_dense_tiny_regions() {
        // K4 as pairs: 6 maximal restrictions on a 4-vertex region; with
        // budget 3 the union bound (41) reaches the region's subset space
        // (16), so a capped stream yields nothing and counts one hit.
        let h = generators::clique(4);
        let comp = h.all_vertices();
        let conn = VertexSet::new();
        let counters = Counters::default();
        let capped = EdgeUnionConfig {
            max_edges: 3,
            balance: None,
            per_state_cap: Some(DEFAULT_STREAM_CAP),
        };
        let n = edge_union_bags(&h, &comp, &conn, &capped, &counters, |_| true).count();
        assert_eq!(n, 0);
        assert_eq!(counters.cap_hits(), 1);
        assert_eq!(counters.generated(), 0);
        // Without the cap the same state streams its unions.
        let counters = Counters::default();
        let uncapped = EdgeUnionConfig {
            max_edges: 3,
            balance: None,
            per_state_cap: None,
        };
        let n = edge_union_bags(&h, &comp, &conn, &uncapped, &counters, |_| true).count();
        assert!(n > 0);
        assert_eq!(counters.cap_hits(), 0);
    }

    #[test]
    fn gate_rejections_are_counted() {
        let h = generators::cycle(3);
        let comp = h.all_vertices();
        let conn = VertexSet::new();
        let counters = Counters::default();
        let cfg = EdgeUnionConfig {
            max_edges: 2,
            balance: None,
            per_state_cap: None,
        };
        let n = edge_union_bags(&h, &comp, &conn, &cfg, &counters, |b| b.len() < 3).count();
        assert_eq!(counters.generated(), counters.filtered() + n);
        assert!(counters.filtered() > 0, "3-vertex unions gated");
    }
}
