//! `hgtool loadgen`: a closed-loop, multi-connection load generator.
//!
//! Each connection keeps one keep-alive socket and replays the given
//! instance list round-robin (offset per connection so the mix
//! interleaves), timing every request client-side. Closed-loop means
//! a connection never pipelines: the next request starts when the
//! previous response lands, so concurrency equals the connection
//! count and the server's queue depth stays observable rather than
//! unbounded.

use crate::http::json_escape;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Concurrent connections (closed loop: one in-flight request per
    /// connection).
    pub connections: usize,
    /// Stop after this much wall-clock.
    pub duration: Duration,
    /// Also stop after this many total requests (whichever first).
    pub max_requests: Option<u64>,
    /// `measure` field sent with every request.
    pub measure: String,
    /// Race the backend registries server-side.
    pub portfolio: bool,
    /// Per-request deadline forwarded to the server.
    pub deadline_ms: Option<u64>,
    /// Every Nth request per connection is a `/solve/batch` of the
    /// whole instance list (0 = singles only).
    pub batch_every: usize,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            connections: 4,
            duration: Duration::from_secs(2),
            max_requests: None,
            measure: "widths".to_string(),
            portfolio: false,
            deadline_ms: None,
            batch_every: 0,
        }
    }
}

/// What a load run measured (client side).
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Connections that ran.
    pub connections: usize,
    /// Total requests sent.
    pub requests: u64,
    /// HTTP 200 responses.
    pub ok: u64,
    /// HTTP 504 responses (server-side deadline strikes).
    pub deadline_expired: u64,
    /// Any other status, or transport failures.
    pub errors: u64,
    /// 200 responses whose body reported `"cached":true`.
    pub cached_responses: u64,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// `requests / elapsed` in requests per second.
    pub qps: f64,
    /// Client-side latency quantiles over all requests, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
}

/// Nearest-rank quantile of a sorted latency vector.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One blocking HTTP exchange on an open connection. Returns
/// `(status, body)`.
pub fn http_call(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: hgtool\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;
    read_http_response(stream)
}

/// Reads one HTTP/1.1 response (status line, headers, content-length
/// body) off `stream`.
fn read_http_response(stream: &mut TcpStream) -> std::io::Result<(u16, String)> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

/// Builds the `/solve` body for one named instance.
fn solve_body(text: &str, opts: &LoadgenOptions) -> String {
    let mut body = format!(
        "{{\"hypergraph\":{},\"measure\":{}",
        json_escape(text),
        json_escape(&opts.measure)
    );
    if opts.portfolio {
        body.push_str(",\"portfolio\":true");
    }
    if let Some(ms) = opts.deadline_ms {
        body.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    body.push('}');
    body
}

/// Builds the `/solve/batch` body over the whole instance list.
fn batch_body(instances: &[(String, String)], opts: &LoadgenOptions) -> String {
    let rows: Vec<String> = instances
        .iter()
        .map(|(name, text)| {
            format!(
                "{{\"name\":{},\"hypergraph\":{}}}",
                json_escape(name),
                json_escape(text)
            )
        })
        .collect();
    let mut body = format!(
        "{{\"instances\":[{}],\"measure\":{}",
        rows.join(","),
        json_escape(&opts.measure)
    );
    if opts.portfolio {
        body.push_str(",\"portfolio\":true");
    }
    if let Some(ms) = opts.deadline_ms {
        body.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    body.push('}');
    body
}

/// Runs the closed loop against `addr` over `instances` — `(name,
/// HyperBench text)` pairs — and aggregates the client-side report.
pub fn run(
    addr: &str,
    instances: &[(String, String)],
    opts: &LoadgenOptions,
) -> std::io::Result<LoadReport> {
    if instances.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "no instances to replay",
        ));
    }
    let connections = opts.connections.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let deadline = started + opts.duration;
    let mut workers = Vec::with_capacity(connections);
    for conn in 0..connections {
        let addr = addr.to_string();
        let instances = instances.to_vec();
        let opts = opts.clone();
        let stop = Arc::clone(&stop);
        let sent = Arc::clone(&sent);
        workers.push(std::thread::spawn(move || {
            let mut report = LoadReport::default();
            let mut latencies: Vec<u64> = Vec::new();
            let mut stream = match TcpStream::connect(&addr) {
                Ok(s) => s,
                Err(_) => {
                    report.errors += 1;
                    return (report, latencies);
                }
            };
            let _ = stream.set_nodelay(true);
            let mut i = conn; // offset so connections interleave the mix
            loop {
                if stop.load(Ordering::Relaxed) || Instant::now() >= deadline {
                    break;
                }
                let n = sent.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(cap) = opts.max_requests {
                    if n > cap {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                let is_batch = opts.batch_every > 0 && n.is_multiple_of(opts.batch_every as u64);
                let (path, body) = if is_batch {
                    ("/solve/batch", batch_body(&instances, &opts))
                } else {
                    let (_, text) = &instances[i % instances.len()];
                    ("/solve", solve_body(text, &opts))
                };
                i += 1;
                let req_started = Instant::now();
                match http_call(&mut stream, "POST", path, Some(&body)) {
                    Ok((status, resp_body)) => {
                        latencies.push(req_started.elapsed().as_micros() as u64);
                        report.requests += 1;
                        match status {
                            200 => {
                                report.ok += 1;
                                if resp_body.contains("\"cached\":true") {
                                    report.cached_responses += 1;
                                }
                            }
                            504 => report.deadline_expired += 1,
                            _ => report.errors += 1,
                        }
                    }
                    Err(_) => {
                        report.requests += 1;
                        report.errors += 1;
                        // Reconnect once; give up on repeated failure.
                        match TcpStream::connect(&addr) {
                            Ok(s) => {
                                stream = s;
                                let _ = stream.set_nodelay(true);
                            }
                            Err(_) => break,
                        }
                    }
                }
            }
            (report, latencies)
        }));
    }
    let mut total = LoadReport {
        connections,
        ..LoadReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for w in workers {
        let (r, l) = w.join().expect("loadgen worker panicked");
        total.requests += r.requests;
        total.ok += r.ok;
        total.deadline_expired += r.deadline_expired;
        total.errors += r.errors;
        total.cached_responses += r.cached_responses;
        latencies.extend(l);
    }
    total.elapsed = started.elapsed();
    total.qps = total.requests as f64 / total.elapsed.as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    total.p50_us = quantile(&latencies, 0.50);
    total.p95_us = quantile(&latencies, 0.95);
    total.p99_us = quantile(&latencies, 0.99);
    Ok(total)
}

impl LoadReport {
    /// The cache-hit ratio over successful responses.
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.cached_responses as f64 / self.ok as f64
        }
    }

    /// Renders the report as one JSON object (the `--json` flag and
    /// the bench harness).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"connections\":{},\"requests\":{},\"ok\":{},\"errors\":{},\
             \"deadline_expired\":{},\"cached_responses\":{},\"cache_hit_ratio\":{:.4},\
             \"elapsed_us\":{},\"qps\":{:.1},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            self.connections,
            self.requests,
            self.ok,
            self.errors,
            self.deadline_expired,
            self.cached_responses,
            self.cache_hit_ratio(),
            self.elapsed.as_micros(),
            self.qps,
            self.p50_us,
            self.p95_us,
            self.p99_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&v, 0.50), 50);
        assert_eq!(quantile(&v, 0.95), 95);
        assert_eq!(quantile(&v, 0.99), 99);
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.99), 7);
    }

    #[test]
    fn bodies_are_valid_json() {
        let opts = LoadgenOptions {
            deadline_ms: Some(250),
            portfolio: true,
            ..LoadgenOptions::default()
        };
        let single = solve_body("e1(a,b), e2(b,c)", &opts);
        obs::json::parse(&single).expect("solve body parses");
        let batch = batch_body(
            &[
                ("a".into(), "e1(a,b)".into()),
                ("b".into(), "e2(x,y)".into()),
            ],
            &opts,
        );
        obs::json::parse(&batch).expect("batch body parses");
    }

    #[test]
    fn report_json_parses() {
        let r = LoadReport {
            connections: 2,
            requests: 10,
            ok: 9,
            errors: 1,
            elapsed: Duration::from_millis(100),
            qps: 100.0,
            ..LoadReport::default()
        };
        obs::json::parse(&r.to_json()).expect("report renders as JSON");
    }
}
