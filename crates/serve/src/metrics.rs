//! The daemon's service metrics, registered in the process-wide `obs`
//! registry so `GET /metrics` renders them live next to the engine's
//! own solve/cache/pool metrics. The catalog lives in
//! `crates/obs/README.md`.

use obs::metrics::{
    counter, counter_with, gauge, histogram_with_buckets, Counter, Gauge, Histogram,
    DEFAULT_LATENCY_BUCKETS_S,
};
use std::sync::{Arc, OnceLock};

/// The endpoints the per-endpoint counters/histograms are labeled by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /solve`.
    Solve,
    /// `POST /solve/batch`.
    SolveBatch,
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Healthz,
    /// `GET /readyz`.
    Readyz,
    /// `GET /version`.
    Version,
    /// `POST /admin/drain`.
    Drain,
    /// Anything else (404s and method mismatches).
    Other,
}

impl Endpoint {
    /// The `endpoint` label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Solve => "solve",
            Endpoint::SolveBatch => "solve_batch",
            Endpoint::Metrics => "metrics",
            Endpoint::Healthz => "healthz",
            Endpoint::Readyz => "readyz",
            Endpoint::Version => "version",
            Endpoint::Drain => "drain",
            Endpoint::Other => "other",
        }
    }

    const ALL: [Endpoint; 8] = [
        Endpoint::Solve,
        Endpoint::SolveBatch,
        Endpoint::Metrics,
        Endpoint::Healthz,
        Endpoint::Readyz,
        Endpoint::Version,
        Endpoint::Drain,
        Endpoint::Other,
    ];
}

/// Every service metric handle, registered once per process.
pub struct ServiceMetrics {
    /// `hgtool_serve_connections_accepted_total`.
    pub connections_accepted: Arc<Counter>,
    /// `hgtool_serve_connections_active`.
    pub connections_active: Arc<Gauge>,
    /// `hgtool_serve_queue_depth` — requests waiting at the solve gate.
    pub queue_depth: Arc<Gauge>,
    /// `hgtool_serve_admission_wait_seconds` — time spent queued at
    /// the solve gate.
    pub admission_wait: Arc<Histogram>,
    /// `hgtool_serve_deadline_expired_total`.
    pub deadline_expired: Arc<Counter>,
    /// `hgtool_serve_requests_cancelled_total` — solves cut short by
    /// drain (not by their own deadline).
    pub cancelled: Arc<Counter>,
    /// `hgtool_serve_slow_requests_total` — requests over the
    /// `HGTOOL_SLOW_REQUEST_MS` threshold.
    pub slow_requests: Arc<Counter>,
    /// `hgtool_serve_ready` — 0 until the pool warmup solve finished.
    pub ready: Arc<Gauge>,
    requests: Vec<(Endpoint, Arc<Counter>)>,
    latency: Vec<(Endpoint, Arc<Histogram>)>,
}

impl ServiceMetrics {
    /// The `hgtool_serve_requests_total{endpoint=...}` counter.
    pub fn requests(&self, ep: Endpoint) -> &Arc<Counter> {
        &self
            .requests
            .iter()
            .find(|(e, _)| *e == ep)
            .expect("every endpoint is registered")
            .1
    }

    /// The `hgtool_serve_request_latency_seconds{endpoint=...}`
    /// histogram (solve endpoints only — probe endpoints are
    /// constant-time and would only dilute the latency track).
    pub fn latency(&self, ep: Endpoint) -> Option<&Arc<Histogram>> {
        self.latency.iter().find(|(e, _)| *e == ep).map(|(_, h)| h)
    }
}

/// The process-wide handle set (first call registers).
pub fn handles() -> &'static ServiceMetrics {
    static M: OnceLock<ServiceMetrics> = OnceLock::new();
    M.get_or_init(|| ServiceMetrics {
        connections_accepted: counter(
            "hgtool_serve_connections_accepted_total",
            "TCP connections accepted by hgtool serve",
        ),
        connections_active: gauge(
            "hgtool_serve_connections_active",
            "Currently open hgtool serve connections",
        ),
        queue_depth: gauge(
            "hgtool_serve_queue_depth",
            "Requests waiting at the solve admission gate",
        ),
        admission_wait: histogram_with_buckets(
            "hgtool_serve_admission_wait_seconds",
            "Time requests spent queued at the solve admission gate",
            &[],
            &DEFAULT_LATENCY_BUCKETS_S,
        ),
        deadline_expired: counter(
            "hgtool_serve_deadline_expired_total",
            "Requests whose per-request deadline expired mid-solve",
        ),
        cancelled: counter(
            "hgtool_serve_requests_cancelled_total",
            "Requests cancelled by server drain",
        ),
        slow_requests: counter(
            "hgtool_serve_slow_requests_total",
            "Requests over the HGTOOL_SLOW_REQUEST_MS threshold",
        ),
        ready: gauge(
            "hgtool_serve_ready",
            "1 once the worker pool spun up and the warmup solve finished",
        ),
        requests: Endpoint::ALL
            .iter()
            .map(|&ep| {
                (
                    ep,
                    counter_with(
                        "hgtool_serve_requests_total",
                        "Requests served by endpoint",
                        &[("endpoint", ep.label())],
                    ),
                )
            })
            .collect(),
        latency: [Endpoint::Solve, Endpoint::SolveBatch]
            .iter()
            .map(|&ep| {
                (
                    ep,
                    histogram_with_buckets(
                        "hgtool_serve_request_latency_seconds",
                        "End-to-end request latency by endpoint",
                        &[("endpoint", ep.label())],
                        &DEFAULT_LATENCY_BUCKETS_S,
                    ),
                )
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_endpoint_has_a_request_counter() {
        let m = handles();
        for ep in Endpoint::ALL {
            m.requests(ep).add(0);
        }
        assert!(m.latency(Endpoint::Solve).is_some());
        assert!(m.latency(Endpoint::SolveBatch).is_some());
        assert!(m.latency(Endpoint::Healthz).is_none());
        let text = obs::metrics::render_prometheus();
        assert!(text.contains("hgtool_serve_requests_total{endpoint=\"solve\"}"));
        assert!(text.contains("hgtool_serve_request_latency_seconds_bucket"));
    }
}
