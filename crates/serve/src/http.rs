//! A minimal HTTP/1.1 request parser and response writer — just the
//! subset the service needs (request line, headers, `Content-Length`
//! bodies, keep-alive, `Expect: 100-continue`), with hard caps on
//! header-block and body sizes so a misbehaving client cannot grow
//! memory without bound.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Cap on the request-line + header block.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path component only (no query handling — the API is JSON-body).
    pub path: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the (lowercased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why [`read_request`] did not produce a request.
#[derive(Debug)]
pub enum RecvError {
    /// Clean EOF before any byte of a new request (keep-alive end).
    Closed,
    /// The read timed out with no bytes of a new request yet — the
    /// connection is idle; the caller may poll its drain flag and call
    /// again.
    Idle,
    /// Malformed request line or headers.
    BadRequest(String),
    /// Header block over [`MAX_HEADER_BYTES`] or body over the
    /// caller's cap.
    TooLarge,
    /// Transport error.
    Io(std::io::Error),
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from `stream`. Honors the stream's read timeout:
/// a timeout before any byte arrives returns [`RecvError::Idle`] (so
/// connection loops can poll their drain flag between requests); a
/// timeout mid-request keeps waiting a bounded number of rounds, then
/// gives up. `Expect: 100-continue` is answered inline before the body
/// is read.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RecvError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let mut stalls = 0usize;
    // Header block first.
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(RecvError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(RecvError::Closed)
                } else {
                    Err(RecvError::BadRequest("eof mid-headers".into()))
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                if buf.is_empty() {
                    return Err(RecvError::Idle);
                }
                stalls += 1;
                if stalls > 40 {
                    return Err(RecvError::BadRequest("header read stalled".into()));
                }
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RecvError::BadRequest("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RecvError::BadRequest("no request target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RecvError::BadRequest(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    let content_length = match req.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| RecvError::BadRequest("bad content-length".into()))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(RecvError::TooLarge);
    }
    if req
        .header("expect")
        .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
    {
        stream
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .map_err(RecvError::Io)?;
    }
    // Body: what trailed the header block, plus the rest of
    // content-length off the wire.
    let mut body: Vec<u8> = buf[header_end + 4..].to_vec();
    let mut stalls = 0usize;
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(RecvError::BadRequest("eof mid-body".into())),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > 40 {
                    return Err(RecvError::BadRequest("body read stalled".into()));
                }
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    body.truncate(content_length);
    Ok(Request { body, ..req })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response to write back.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Echoed as the `X-Request-Id` header when set.
    pub request_id: Option<String>,
    /// Ask the client to close after this exchange (and close our
    /// side): error paths and draining set this.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            request_id: None,
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            request_id: None,
            close: false,
        }
    }

    /// A JSON error body `{"error": msg}` (connection kept open —
    /// protocol-level failures set `close` separately).
    pub fn error(status: u16, msg: &str) -> Response {
        Response::json(status, format!("{{\"error\":{}}}\n", json_escape(msg)))
    }
}

/// The reason-phrase for the status codes the service emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes `resp` as an HTTP/1.1 message.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(id) = &resp.request_id {
        head.push_str(&format!("X-Request-Id: {id}\r\n"));
    }
    head.push_str(if resp.close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Escapes `s` as a JSON string literal (used by the hand-assembled
/// response bodies; requests parse through `obs::json`).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "\"plain\"");
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
