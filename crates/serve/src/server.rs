//! The daemon: accept loop, connection workers, readiness warmup,
//! graceful drain, signal handling and the streaming trace sink.

use crate::http::{read_request, write_response, RecvError, Response};
use crate::metrics::handles;
use crate::service;
use hypertree_core::hypergraph::{generators, Hypergraph};
use hypertree_core::prep::anytime::{interrupt, CancelToken};
use hypertree_core::solver::EngineOptions;
use hypertree_core::{ghd, solver};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Environment variable: slow-request log threshold in milliseconds.
pub const SLOW_REQUEST_ENV: &str = "HGTOOL_SLOW_REQUEST_MS";

/// Environment variable: trace 1-in-N request sampling.
pub const TRACE_SAMPLE_ENV: &str = "HGTOOL_TRACE_SAMPLE";

/// Environment variable: request body cap in bytes.
pub const MAX_BODY_ENV: &str = "HGTOOL_MAX_BODY_BYTES";

/// Environment variable: drain grace period in milliseconds before
/// in-flight solves are cancelled.
pub const DRAIN_GRACE_ENV: &str = "HGTOOL_DRAIN_GRACE_MS";

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok().and_then(|v| v.parse::<u64>().ok())
}

/// Daemon configuration. [`ServeConfig::from_env`] reads the env
/// knobs; fields stay overridable for tests and the bench harness.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7878`; port 0 picks an ephemeral one).
    pub addr: String,
    /// Engine options for every solve. The default forces at least two
    /// workers so the shared pool actually spins up (same rationale as
    /// `hgtool metrics`).
    pub engine: EngineOptions,
    /// Append the `hgtool-trace/v1` JSONL stream of sampled requests
    /// to this file.
    pub trace_json: Option<String>,
    /// Request body cap in bytes.
    pub max_body_bytes: usize,
    /// Slow-request log threshold; `None` disables the log.
    pub slow_request_ms: Option<u64>,
    /// Trace 1-in-N request sampling (1 = every request).
    pub trace_sample: u64,
    /// The warmup instance `/readyz` gates on (default: a small cycle).
    pub warmup: Option<Hypergraph>,
    /// How long a drain waits for in-flight requests before cancelling
    /// them through the root token.
    pub drain_grace: Duration,
}

impl ServeConfig {
    /// Defaults with every env knob applied.
    pub fn from_env() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            engine: EngineOptions {
                threads: Some(solver::default_thread_count().max(2)),
                ..EngineOptions::default()
            },
            trace_json: None,
            max_body_bytes: env_u64(MAX_BODY_ENV).unwrap_or(8 * 1024 * 1024) as usize,
            slow_request_ms: env_u64(SLOW_REQUEST_ENV),
            trace_sample: env_u64(TRACE_SAMPLE_ENV).unwrap_or(1).max(1),
            warmup: None,
            drain_grace: Duration::from_millis(env_u64(DRAIN_GRACE_ENV).unwrap_or(5_000)),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::from_env()
    }
}

/// State shared by the accept loop, connection workers and the service
/// layer.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    /// Every request token is a child of this; drain cancels it after
    /// the grace period.
    pub(crate) root: CancelToken,
    pub(crate) draining: AtomicBool,
    pub(crate) ready: AtomicBool,
    /// Solves run one at a time (one search saturates the pool).
    pub(crate) solve_gate: Mutex<()>,
    pub(crate) next_request: AtomicU64,
    pub(crate) engine_opts: EngineOptions,
    sample_counter: AtomicU64,
    /// Whether tracing was armed process-wide (HGTOOL_TRACE) before the
    /// server started — sampling never disarms a baseline-on trace.
    baseline_trace: bool,
    sink: Option<Mutex<std::fs::File>>,
    active: Mutex<usize>,
    idle: Condvar,
}

impl Shared {
    /// 1-in-N sampling decision for the current request. Only samples
    /// when something consumes spans (a sink, the slow log, or a
    /// baseline-armed trace).
    pub(crate) fn sample_request(&self) -> bool {
        let wants =
            self.baseline_trace || self.sink.is_some() || self.config.slow_request_ms.is_some();
        if !wants {
            return false;
        }
        let n = self.config.trace_sample.max(1);
        self.sample_counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(n)
    }

    /// Appends span lines of one drained request to the JSONL sink.
    pub(crate) fn write_trace(&self, spans: &[obs::trace::SpanRecord]) {
        if spans.is_empty() {
            return;
        }
        if let Some(sink) = &self.sink {
            let mut f = sink.lock().expect("trace sink poisoned");
            let _ = f.write_all(obs::trace::render_span_lines(spans).as_bytes());
        }
    }

    /// The slow-request log: over the threshold, print the request's
    /// phase self-time breakdown from its trace (or a latency-only
    /// line when the request wasn't sampled).
    pub(crate) fn slow_log(
        &self,
        request_id: &str,
        endpoint: &str,
        elapsed: Duration,
        spans: &[obs::trace::SpanRecord],
    ) {
        let Some(threshold_ms) = self.config.slow_request_ms else {
            return;
        };
        if elapsed.as_millis() < u128::from(threshold_ms) {
            return;
        }
        handles().slow_requests.inc();
        if spans.is_empty() {
            eprintln!(
                "serve: slow request {request_id} {endpoint} {}ms (untraced; \
                 set HGTOOL_TRACE_SAMPLE=1 for phase breakdowns)",
                elapsed.as_millis()
            );
            return;
        }
        let mut phases: Vec<(&str, (u64, u64))> =
            obs::trace::phase_totals(spans).into_iter().collect();
        phases.sort_by_key(|&(_, (_, self_us))| std::cmp::Reverse(self_us));
        let breakdown: Vec<String> = phases
            .iter()
            .take(6)
            .map(|(name, (count, self_us))| format!("{name}={self_us}us/{count}"))
            .collect();
        eprintln!(
            "serve: slow request {request_id} {endpoint} {}ms phases[self-time]: {} ({} spans)",
            elapsed.as_millis(),
            breakdown.join(" "),
            spans.len()
        );
    }

    fn connection_opened(&self) {
        *self.active.lock().expect("active count poisoned") += 1;
    }

    fn connection_closed(&self) {
        let mut n = self.active.lock().expect("active count poisoned");
        *n -= 1;
        if *n == 0 {
            self.idle.notify_all();
        }
    }

    /// Waits until no connections are active, up to `timeout`.
    fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut n = self.active.lock().expect("active count poisoned");
        while *n > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .idle
                .wait_timeout(n, deadline - now)
                .expect("active count poisoned");
            n = guard;
        }
        true
    }
}

/// A running daemon. Dropping the handle does not stop it; call
/// [`Server::drain`] (or `POST /admin/drain`, or send SIGTERM under
/// [`Server::run_until_drained`]).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    warmup_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting. Returns once the listener is live
    /// (readiness lags until the warmup solve finishes — poll
    /// `/readyz` or [`Server::ready`]).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let m = handles();
        interrupt::install_quiet_hook();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let sink = match &config.trace_json {
            Some(path) => {
                let mut f = std::fs::File::create(path)?;
                f.write_all(obs::trace::render_jsonl_stream_meta().as_bytes())?;
                Some(Mutex::new(f))
            }
            None => None,
        };
        let engine_opts = config.engine;
        let shared = Arc::new(Shared {
            root: CancelToken::new(),
            draining: AtomicBool::new(false),
            ready: AtomicBool::new(false),
            solve_gate: Mutex::new(()),
            next_request: AtomicU64::new(1),
            engine_opts,
            sample_counter: AtomicU64::new(0),
            baseline_trace: obs::trace::enabled(),
            sink,
            active: Mutex::new(0),
            idle: Condvar::new(),
            config,
        });

        // Readiness: solve a small instance with the configured engine
        // options so the shared worker pool spins up before the first
        // real request; /readyz reports 200 once it lands.
        let warmup_shared = Arc::clone(&shared);
        let warmup_thread = std::thread::Builder::new()
            .name("serve-warmup".to_string())
            .spawn(move || {
                let h = warmup_shared
                    .config
                    .warmup
                    .clone()
                    .unwrap_or_else(|| generators::cycle(4));
                let _ = ghd::ghw_exact_with_stats(&h, None, warmup_shared.engine_opts);
                warmup_shared.ready.store(true, Ordering::Relaxed);
                handles().ready.set(1);
            })
            .expect("spawn warmup thread");

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        let _ = m;
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            warmup_thread: Some(warmup_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the warmup solve finished.
    pub fn ready(&self) -> bool {
        self.shared.ready.load(Ordering::Relaxed)
    }

    /// Triggers a drain without waiting (the accept loop notices
    /// within its poll interval).
    pub fn request_drain(&self) {
        self.shared.draining.store(true, Ordering::Relaxed);
    }

    /// Graceful shutdown: stop accepting, wait for in-flight requests
    /// up to the grace period, cancel stragglers through the root
    /// token, flush the sink, join every thread.
    pub fn drain(mut self) {
        self.request_drain();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let grace = self.shared.config.drain_grace;
        if !self.shared.wait_idle(grace) {
            // Grace expired: cancel in-flight solves through the
            // CancelToken chains; they unwind, answer 503, and close.
            self.shared.root.cancel();
            let _ = self.shared.wait_idle(Duration::from_secs(30));
        }
        if let Some(t) = self.warmup_thread.take() {
            let _ = t.join();
        }
        if let Some(sink) = &self.shared.sink {
            let _ = sink.lock().expect("trace sink poisoned").flush();
        }
    }

    /// Blocks until a drain is requested — by SIGTERM/SIGINT (unix),
    /// or `POST /admin/drain` — then drains. The `hgtool serve`
    /// foreground loop.
    pub fn run_until_drained(self) {
        #[cfg(unix)]
        signals::install();
        loop {
            #[cfg(unix)]
            if signals::signaled() {
                eprintln!("serve: signal received, draining");
                break;
            }
            if self.shared.draining.load(Ordering::Relaxed) {
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        self.drain();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let m = handles();
    while !shared.draining.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                m.connections_accepted.inc();
                m.connections_active.add(1);
                shared.connection_opened();
                let conn_shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared);
                        handles().connections_active.sub(1);
                        conn_shared.connection_closed();
                    });
            }
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock) => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    // Dropping the listener closes the socket; connections drain
    // through Server::drain.
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // Short read timeout so idle keep-alive connections poll the drain
    // flag; blocking reads would pin the drain on client inactivity.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    loop {
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        match read_request(&mut stream, shared.config.max_body_bytes) {
            Ok(req) => {
                let (mut resp, drain) = service::handle(shared, &req);
                if req.wants_close() {
                    resp.close = true;
                }
                let write_ok = write_response(&mut stream, &resp).is_ok();
                if drain {
                    shared.draining.store(true, Ordering::Relaxed);
                }
                if !write_ok || resp.close || drain {
                    return;
                }
            }
            Err(RecvError::Idle) => continue,
            Err(RecvError::Closed) => return,
            Err(RecvError::TooLarge) => {
                let mut resp = Response::error(413, "request too large");
                resp.close = true;
                let _ = write_response(&mut stream, &resp);
                return;
            }
            Err(RecvError::BadRequest(msg)) => {
                let mut resp = Response::error(400, &msg);
                resp.close = true;
                let _ = write_response(&mut stream, &resp);
                return;
            }
            Err(RecvError::Io(_)) => return,
        }
    }
}

/// SIGTERM/SIGINT notification without a signal-handling dependency:
/// the handler only sets an atomic flag (async-signal-safe), polled by
/// [`Server::run_until_drained`]. The `signal` symbol comes from libc,
/// which std already links.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the flag-setting handler for SIGINT (2) and SIGTERM (15).
    pub(super) fn install() {
        // SAFETY: `signal` is the C library's handler registration; the
        // handler does nothing but a relaxed atomic store, which is
        // async-signal-safe.
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }

    pub(super) fn signaled() -> bool {
        SIGNALED.load(Ordering::SeqCst)
    }
}
