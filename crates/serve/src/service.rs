//! Request routing and the solve paths: JSON in (via `obs::json`),
//! solves through the engine / portfolio with the request's deadline
//! as an ambient cancellation token, JSON out, with the request-id on
//! the root span, per-request trace sampling, and the slow-request
//! log.

use crate::http::{json_escape, Request, Response};
use crate::metrics::{handles, Endpoint};
use crate::server::Shared;
use hypertree_core::hypergraph::{parser, Hypergraph};
use hypertree_core::prep::anytime::{interrupt, with_ctl, RunCtl};
use hypertree_core::solver::backend::{Measure, WidthRequest};
use hypertree_core::solver::portfolio::{race, PortfolioOptions, RaceReport};
use hypertree_core::{fhd, ghd, hd, solver};
use obs::json::Json;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Which width(s) a request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MeasureSel {
    /// All three (`hw`, `ghw`, `fhw`) — the default.
    Widths,
    /// `hw` only.
    Hw,
    /// `ghw` only.
    Ghw,
    /// `fhw` only.
    Fhw,
}

impl MeasureSel {
    fn parse(s: &str) -> Option<MeasureSel> {
        match s {
            "widths" => Some(MeasureSel::Widths),
            "hw" => Some(MeasureSel::Hw),
            "ghw" => Some(MeasureSel::Ghw),
            "fhw" => Some(MeasureSel::Fhw),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            MeasureSel::Widths => "widths",
            MeasureSel::Hw => "hw",
            MeasureSel::Ghw => "ghw",
            MeasureSel::Fhw => "fhw",
        }
    }
}

/// Parsed request knobs shared by `/solve` and `/solve/batch`.
#[derive(Clone, Debug)]
struct SolveParams {
    measure: MeasureSel,
    portfolio: bool,
    deadline: Option<Duration>,
    max_hw: usize,
    witness: bool,
}

impl SolveParams {
    fn from_json(v: &Json) -> Result<SolveParams, String> {
        let measure = match v.get("measure") {
            None => MeasureSel::Widths,
            Some(m) => {
                let s = m.as_str().ok_or("measure must be a string")?;
                MeasureSel::parse(s)
                    .ok_or_else(|| format!("unknown measure {s:?}; use widths|hw|ghw|fhw"))?
            }
        };
        let portfolio = match v.get("portfolio") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("portfolio must be a boolean".into()),
        };
        let deadline = match v.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(d) => {
                let ms = d
                    .as_num()
                    .filter(|n| *n >= 0.0)
                    .ok_or("deadline_ms must be a non-negative number")?;
                Some(Duration::from_millis(ms as u64))
            }
        };
        let max_hw = match v.get("max_hw") {
            None => 8,
            Some(n) => n
                .as_num()
                .filter(|n| *n >= 1.0 && *n <= 64.0)
                .ok_or("max_hw must be a number in 1..=64")? as usize,
        };
        let witness = match v.get("witness") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("witness must be a boolean".into()),
        };
        Ok(SolveParams {
            measure,
            portfolio,
            deadline,
            max_hw,
            witness,
        })
    }
}

/// What a solve produced for one instance, ready for JSON assembly.
struct SolveBody {
    /// `(measure label, rendered width)` pairs — numbers stay raw
    /// (`3`), rationals are quoted strings (`"5/3"`), matching the
    /// direct API's `Display` byte for byte.
    widths: Vec<(&'static str, String)>,
    /// `(measure label, rendered witness)` when requested.
    witnesses: Vec<(&'static str, String)>,
    /// `(measure label, winning backend)` on the portfolio path.
    winners: Vec<(&'static str, String)>,
    /// Whether any engine answered from the cross-call result cache.
    cached: bool,
}

/// Why one instance's solve produced no widths.
enum SolveFail {
    /// Out of the exact engines' range (or `hw > max_hw`).
    OutOfRange,
    /// A portfolio race ended unresolved without a deadline strike.
    Unresolved,
}

fn rat_json(w: &hypertree_core::arith::Rational) -> String {
    // Integral rationals serialize as JSON numbers, true fractions as
    // their exact `p/q` string — both are the direct API's `Display`.
    let s = w.to_string();
    if s.contains('/') {
        json_escape(&s)
    } else {
        s
    }
}

fn cached(stats: &solver::SearchStats) -> bool {
    stats.result_cache_hits > 0
}

/// The plain (single-backend) solve: per-measure engine calls, exactly
/// the ones `exact_widths_with_opts` makes, so widths and witnesses
/// are byte-identical to the direct API.
fn solve_plain(
    h: &Hypergraph,
    p: &SolveParams,
    opts: solver::EngineOptions,
) -> Result<SolveBody, SolveFail> {
    let mut body = SolveBody {
        widths: Vec::new(),
        witnesses: Vec::new(),
        winners: Vec::new(),
        cached: false,
    };
    let keep = |body: &mut SolveBody,
                name: &'static str,
                width: String,
                d: hypertree_core::decomp::Decomposition,
                stats: &solver::SearchStats| {
        body.widths.push((name, width));
        if p.witness {
            body.witnesses.push((name, d.render(h)));
        }
        body.cached |= cached(stats);
    };
    if matches!(p.measure, MeasureSel::Widths | MeasureSel::Hw) {
        let (hw, stats) = hd::hypertree_width_with_stats(h, p.max_hw, opts);
        let (k, d) = hw.ok_or(SolveFail::OutOfRange)?;
        keep(&mut body, "hw", k.to_string(), d, &stats);
    }
    if matches!(p.measure, MeasureSel::Widths | MeasureSel::Ghw) {
        let (ghw, stats) = ghd::ghw_exact_with_stats(h, None, opts);
        let (k, d) = ghw.ok_or(SolveFail::OutOfRange)?;
        keep(&mut body, "ghw", k.to_string(), d, &stats);
    }
    if matches!(p.measure, MeasureSel::Widths | MeasureSel::Fhw) {
        let (fhw, stats) = fhd::fhw_exact_with_stats(h, None, opts);
        let (w, d) = fhw.ok_or(SolveFail::OutOfRange)?;
        keep(&mut body, "fhw", rat_json(&w), d, &stats);
    }
    Ok(body)
}

/// The portfolio solve: each requested measure races its backend
/// registry; first exact answer wins, losers are cancelled.
fn solve_portfolio(
    h: &Hypergraph,
    p: &SolveParams,
    opts: solver::EngineOptions,
    popts: &PortfolioOptions,
) -> Result<SolveBody, SolveFail> {
    let mut body = SolveBody {
        widths: Vec::new(),
        witnesses: Vec::new(),
        winners: Vec::new(),
        cached: false,
    };
    let measures: Vec<(&'static str, Measure)> = match p.measure {
        MeasureSel::Widths => vec![
            ("hw", Measure::Hw { max_k: p.max_hw }),
            ("ghw", Measure::Ghw { cutoff: None }),
            ("fhw", Measure::Fhw { cutoff: None }),
        ],
        MeasureSel::Hw => vec![("hw", Measure::Hw { max_k: p.max_hw })],
        MeasureSel::Ghw => vec![("ghw", Measure::Ghw { cutoff: None })],
        MeasureSel::Fhw => vec![("fhw", Measure::Fhw { cutoff: None })],
    };
    for (name, measure) in measures {
        let backends = hypertree_core::backends_for(&measure);
        let req = WidthRequest { measure, opts };
        let r: RaceReport = race(h, &req, &backends, popts);
        let Some(width) = r.outcome.width.clone() else {
            return Err(if r.winner.is_some() {
                // A certified "no" within the cutoff window.
                SolveFail::OutOfRange
            } else {
                SolveFail::Unresolved
            });
        };
        let rendered = if name == "fhw" {
            rat_json(&width)
        } else {
            // Integral measures report integral rationals.
            width.floor().to_i64().unwrap_or(0).max(0).to_string()
        };
        body.widths.push((name, rendered));
        if p.witness {
            if let Some(d) = &r.outcome.witness {
                body.witnesses.push((name, d.render(h)));
            }
        }
        if let Some(winner) = r.winner {
            body.winners.push((name, winner.to_string()));
        }
        body.cached |= cached(&r.outcome.stats);
    }
    Ok(body)
}

fn solve_dispatch(
    h: &Hypergraph,
    p: &SolveParams,
    opts: solver::EngineOptions,
) -> Result<SolveBody, SolveFail> {
    if p.portfolio {
        let popts = PortfolioOptions {
            deadline: p.deadline,
            ..PortfolioOptions::from_env()
        };
        solve_portfolio(h, p, opts, &popts)
    } else {
        solve_plain(h, p, opts)
    }
}

/// Renders one instance's solved body as a JSON object fragment
/// (no surrounding braces).
fn body_fields(body: &SolveBody) -> String {
    let obj = |pairs: &[(&'static str, String)], quoted: bool| {
        let inner: Vec<String> = pairs
            .iter()
            .map(|(k, v)| {
                if quoted {
                    format!("\"{k}\":{}", json_escape(v))
                } else {
                    format!("\"{k}\":{v}")
                }
            })
            .collect();
        format!("{{{}}}", inner.join(","))
    };
    let mut out = format!(
        "\"widths\":{},\"cached\":{}",
        obj(&body.widths, false),
        body.cached
    );
    if !body.winners.is_empty() {
        out.push_str(&format!(",\"winners\":{}", obj(&body.winners, true)));
    }
    if !body.witnesses.is_empty() {
        out.push_str(&format!(",\"witnesses\":{}", obj(&body.witnesses, true)));
    }
    out
}

/// What `run_guarded` classified a caught unwind as.
enum Interrupted {
    Deadline,
    Cancelled,
    Panic(String),
}

/// Runs `f` under the request's cancellation control, converting an
/// interrupt unwind into a typed reason.
fn run_guarded<R>(
    shared: &Shared,
    deadline: Option<Duration>,
    f: impl FnOnce() -> R,
) -> Result<R, Interrupted> {
    let token = shared.root.child_with_deadline(deadline);
    let started = Instant::now();
    let ctl = RunCtl {
        cancel: token,
        sink: Default::default(),
    };
    match catch_unwind(AssertUnwindSafe(|| with_ctl(ctl, f))) {
        Ok(r) => Ok(r),
        Err(payload) => {
            if interrupt::is_interrupt(payload.as_ref()) {
                match deadline {
                    Some(d) if started.elapsed() >= d => Err(Interrupted::Deadline),
                    _ => Err(Interrupted::Cancelled),
                }
            } else {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(|s| s.as_str())
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("opaque panic")
                    .to_string();
                Err(Interrupted::Panic(msg))
            }
        }
    }
}

/// Routes one request. The second return value is true when the
/// request asked the server to drain.
pub(crate) fn handle(shared: &Shared, req: &Request) -> (Response, bool) {
    let m = handles();
    let (endpoint, resp, drain) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (Endpoint::Healthz, Response::text(200, "ok\n".into()), false),
        ("GET", "/readyz") => {
            let ready = shared.ready.load(Ordering::Relaxed);
            let resp = if ready {
                Response::text(200, "ready\n".into())
            } else {
                Response::text(503, "warming up\n".into())
            };
            (Endpoint::Readyz, resp, false)
        }
        ("GET", "/version") => {
            let body = format!(
                "{{\"name\":\"hgtool-serve\",\"version\":{},\"api\":{},\"trace\":\"hgtool-trace/v1\"}}\n",
                json_escape(env!("CARGO_PKG_VERSION")),
                json_escape(crate::API_SCHEMA),
            );
            (Endpoint::Version, Response::json(200, body), false)
        }
        ("GET", "/metrics") => {
            // The live registry — engine metrics and the service's own,
            // rendered while solves are in flight.
            let resp = Response::text(200, obs::metrics::render_prometheus());
            (Endpoint::Metrics, resp, false)
        }
        ("POST", "/admin/drain") => {
            let resp = Response::json(200, "{\"draining\":true}\n".to_string());
            (Endpoint::Drain, resp, true)
        }
        ("POST", "/solve") => (Endpoint::Solve, solve_endpoint(shared, req, false), false),
        ("POST", "/solve/batch") => (
            Endpoint::SolveBatch,
            solve_endpoint(shared, req, true),
            false,
        ),
        (_, "/solve" | "/solve/batch" | "/admin/drain") => {
            (Endpoint::Other, Response::error(405, "use POST"), false)
        }
        (_, "/healthz" | "/readyz" | "/version" | "/metrics") => {
            (Endpoint::Other, Response::error(405, "use GET"), false)
        }
        (_, path) => (
            Endpoint::Other,
            Response::error(404, &format!("no route {path}")),
            false,
        ),
    };
    m.requests(endpoint).inc();
    (resp, drain)
}

/// `/solve` and `/solve/batch`: parse, queue at the admission gate,
/// arm tracing for sampled requests, solve under the deadline token,
/// assemble JSON.
fn solve_endpoint(shared: &Shared, req: &Request, batch: bool) -> Response {
    let endpoint = if batch {
        Endpoint::SolveBatch
    } else {
        Endpoint::Solve
    };
    let m = handles();
    let request_id = format!("r-{}", shared.next_request.fetch_add(1, Ordering::Relaxed));
    let started = Instant::now();
    let with_id = |mut resp: Response| {
        resp.request_id = Some(request_id.clone());
        resp
    };
    if shared.draining.load(Ordering::Relaxed) {
        let mut resp = with_id(Response::error(503, "draining"));
        resp.close = true;
        return resp;
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return with_id(Response::error(400, "body is not UTF-8")),
    };
    let json = match obs::json::parse(body) {
        Ok(v) => v,
        Err(e) => return with_id(Response::error(400, &format!("bad JSON body: {e}"))),
    };
    let params = match SolveParams::from_json(&json) {
        Ok(p) => p,
        Err(e) => return with_id(Response::error(400, &e)),
    };
    // Parse instances up front (cheap) so malformed hypergraphs fail
    // before queuing at the gate.
    let instances: Vec<(String, Hypergraph)> = if batch {
        let Some(Json::Arr(list)) = json.get("instances") else {
            return with_id(Response::error(400, "batch body needs an instances array"));
        };
        if list.is_empty() {
            return with_id(Response::error(400, "instances is empty"));
        }
        let mut out = Vec::with_capacity(list.len());
        for (i, item) in list.iter().enumerate() {
            let name = item
                .get("name")
                .and_then(|n| n.as_str())
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("instance-{i}"));
            let Some(text) = item.get("hypergraph").and_then(|t| t.as_str()) else {
                return with_id(Response::error(
                    400,
                    &format!("instances[{i}] needs a hypergraph string"),
                ));
            };
            match parser::parse(text) {
                Ok(h) => out.push((name, h)),
                Err(e) => {
                    return with_id(Response::error(400, &format!("instances[{i}]: parse: {e}")))
                }
            }
        }
        out
    } else {
        let Some(text) = json.get("hypergraph").and_then(|t| t.as_str()) else {
            return with_id(Response::error(400, "body needs a hypergraph string"));
        };
        match parser::parse(text) {
            Ok(h) => vec![("instance".to_string(), h)],
            Err(e) => return with_id(Response::error(400, &format!("parse: {e}"))),
        }
    };

    // Admission: solves run one at a time (one search already
    // saturates the shared pool); the gauge and wait histogram make
    // the queue observable.
    m.queue_depth.add(1);
    let wait_started = Instant::now();
    let _gate = shared.solve_gate.lock().expect("solve gate poisoned");
    m.queue_depth.sub(1);
    m.admission_wait
        .observe_us(wait_started.elapsed().as_micros() as u64);
    if shared.draining.load(Ordering::Relaxed) || shared.root.is_canceled() {
        m.cancelled.inc();
        let mut resp = with_id(Response::error(503, "cancelled (draining)"));
        resp.close = true;
        return resp;
    }

    // Request-scoped tracing: sampled 1-in-N (HGTOOL_TRACE_SAMPLE)
    // when a sink or the slow-log wants phase data. Arm/drain is safe
    // here because the gate serializes solves.
    let sampled = shared.sample_request();
    let was_enabled = obs::trace::enabled();
    if sampled && !was_enabled {
        obs::trace::set_enabled(true);
    }
    let tracing = obs::trace::enabled();
    if tracing {
        obs::trace::drain(); // start from a clean buffer
    }

    let outcome = {
        let _span = obs::span!(
            "request",
            request_id = request_id.clone(),
            endpoint = endpoint.label(),
            measure = params.measure.label(),
            portfolio = params.portfolio,
            instances = instances.len()
        );
        run_guarded(shared, params.deadline, || {
            if batch {
                let hs: Vec<Hypergraph> = instances.iter().map(|(_, h)| h.clone()).collect();
                solver::solve_batch(&hs, |_, h| {
                    let result = solve_dispatch(h, &params, shared.engine_opts);
                    // solve_batch threads per-item stats to its
                    // schedulers; the response only keeps the bodies.
                    (result, solver::SearchStats::default())
                })
                .into_iter()
                .map(|(r, _)| r)
                .collect::<Vec<_>>()
            } else {
                vec![solve_dispatch(&instances[0].1, &params, shared.engine_opts)]
            }
        })
    };

    let spans = if tracing {
        obs::trace::drain()
    } else {
        Vec::new()
    };
    if sampled && !was_enabled {
        obs::trace::set_enabled(false);
    }
    shared.write_trace(&spans);

    let elapsed = started.elapsed();
    if let Some(h) = m.latency(endpoint) {
        h.observe_us(elapsed.as_micros() as u64);
    }
    shared.slow_log(&request_id, endpoint.label(), elapsed, &spans);

    let results = match outcome {
        Ok(results) => results,
        Err(Interrupted::Deadline) => {
            m.deadline_expired.inc();
            return with_id(Response::error(504, "deadline expired"));
        }
        Err(Interrupted::Cancelled) => {
            m.cancelled.inc();
            let mut resp = with_id(Response::error(503, "cancelled (draining)"));
            resp.close = true;
            return resp;
        }
        Err(Interrupted::Panic(msg)) => {
            return with_id(Response::error(500, &format!("solve panicked: {msg}")));
        }
    };

    let tail = format!(
        "\"request_id\":{},\"elapsed_us\":{}",
        json_escape(&request_id),
        elapsed.as_micros()
    );
    let resp = if batch {
        let rows: Vec<String> = instances
            .iter()
            .zip(&results)
            .map(|((name, _), r)| match r {
                Ok(body) => format!("{{\"name\":{},{}}}", json_escape(name), body_fields(body)),
                Err(SolveFail::OutOfRange) => format!(
                    "{{\"name\":{},\"error\":\"out of exact range\"}}",
                    json_escape(name)
                ),
                Err(SolveFail::Unresolved) => format!(
                    "{{\"name\":{},\"error\":\"race unresolved\"}}",
                    json_escape(name)
                ),
            })
            .collect();
        Response::json(
            200,
            format!(
                "{{\"results\":[{}],\"count\":{},{}}}\n",
                rows.join(","),
                results.len(),
                tail
            ),
        )
    } else {
        match &results[0] {
            Ok(body) => Response::json(200, format!("{{{},{}}}\n", body_fields(body), tail)),
            Err(SolveFail::OutOfRange) => {
                Response::error(422, "instance out of exact range (or hw > max_hw)")
            }
            Err(SolveFail::Unresolved) => Response::error(422, "race unresolved"),
        }
    };
    with_id(resp)
}
