//! # serve — width-as-a-service
//!
//! A std-only HTTP/1.1 daemon over [`std::net::TcpListener`] that
//! accepts hypergraphs — single and batch — and routes them through
//! the solver runtime, with observability as the organizing layer:
//! every request gets a request-id attached to its root `obs` span,
//! service metrics (connections, queue depth, admission waits,
//! per-endpoint counters and µs-scale latency histograms, deadline and
//! cancellation counters) live in the process-wide `obs` registry, and
//! `GET /metrics` renders that registry live while solves are in
//! flight.
//!
//! # Endpoints
//!
//! | Endpoint            | Behavior                                         |
//! |---------------------|--------------------------------------------------|
//! | `POST /solve`       | one instance: measure, portfolio, deadline-ms    |
//! | `POST /solve/batch` | many instances through `solver::solve_batch`     |
//! | `GET /metrics`      | live Prometheus render of the `obs` registry     |
//! | `GET /healthz`      | liveness (always 200 while the process runs)     |
//! | `GET /readyz`       | 200 once the pool spun up + warmup solve is done |
//! | `GET /version`      | crate version + schema tags                      |
//! | `POST /admin/drain` | graceful shutdown (stop accepting, drain, flush) |
//!
//! # Concurrency model
//!
//! Connections are handled thread-per-connection with keep-alive, but
//! solves are admitted one at a time through a gate mutex — the same
//! discipline as `solver::solve_batch`, because one engine search
//! already saturates the shared worker pool. The gate makes the
//! queue-depth gauge and the admission-wait histogram meaningful, and
//! makes per-request trace arm/drain race-free.
//!
//! # Deadlines and drain
//!
//! Per-request deadlines ride the existing cancellation machinery: a
//! request token is a child of the server root `CancelToken` with the
//! request's deadline, installed as the ambient `RunCtl` for the
//! solve; the engine root picks it up and unwinds with the interrupt
//! payload when it expires. Draining (SIGTERM/ctrl-c, `POST
//! /admin/drain`, or [`Server::drain`]) stops accepting, waits for
//! in-flight requests up to a grace period, then cancels the root
//! token so stragglers unwind through the same chains, and flushes
//! the trace sink.

pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod server;
mod service;

pub use loadgen::{LoadReport, LoadgenOptions};
pub use server::{ServeConfig, Server};

/// The JSON response schema tag (`GET /version` reports it).
pub const API_SCHEMA: &str = "hgtool-serve/v1";
